(* Generative testing of the MiniC++ pipeline: random well-formed
   programs are pretty-printed, re-parsed, checked, annotated and
   executed.  Properties:

   - pretty/reparse is the identity (modulo printing);
   - the checker accepts every generated program;
   - the interpreter runs them without runtime errors, deadlocks or
     VM misuse;
   - the annotation pass never changes program output;
   - execution is deterministic per seed. *)

module M = Raceguard_minicc
module Vm = Raceguard_vm
module Engine = Vm.Engine
open M.Ast

let pos = { M.Token.file = "gen.mcc"; line = 1; col = 1 }
let e d = { e = d; epos = pos }
let s d = { s = d; spos = pos }

(* --- AST generators --------------------------------------------------- *)

open QCheck2.Gen

(* integer expressions over the variables in scope (no division: the
   generator guarantees crash-freedom) *)
let rec gen_expr ~vars n =
  if n <= 0 then gen_atom ~vars
  else
    oneof
      [
        gen_atom ~vars;
        (let* op = oneofl [ Add; Sub; Mul; Eq; Neq; Lt; Le; Gt; Ge; And; Or ] in
         let* a = gen_expr ~vars (n / 2) in
         let* b = gen_expr ~vars (n / 2) in
         return (e (Binop (op, a, b))));
        (let* a = gen_expr ~vars (n - 1) in
         return (e (Unop (Not, a))));
        (let* a = gen_expr ~vars (n - 1) in
         return (e (Unop (Neg, a))));
      ]

and gen_atom ~vars =
  if vars = [] then map (fun n -> e (Int n)) (int_range (-20) 20)
  else
    oneof
      [
        map (fun n -> e (Int n)) (int_range (-20) 20);
        map (fun v -> e (Var v)) (oneofl vars);
      ]

(* statements writing only to [vars]; bounded loops by construction *)
let gen_stmts ~vars =
  let* items =
    list_size (int_bound 6)
      (oneof
         [
           (let* v = oneofl vars in
            let* ex = gen_expr ~vars 3 in
            return (`Assign (v, ex)));
           (let* ex = gen_expr ~vars 2 in
            return (`Print ex));
           (let* c = gen_expr ~vars 2 in
            let* v = oneofl vars in
            let* a = gen_expr ~vars 2 in
            return (`If (c, v, a)));
           (let* v = oneofl vars in
            let* iters = int_range 1 4 in
            return (`Loop (v, iters)));
         ])
  in
  return
    (List.concat_map
       (function
         | `Assign (v, ex) -> [ s (Assign (Lvar v, ex)) ]
         | `Print ex -> [ s (Expr (e (Call ("print", [ ex ])))) ]
         | `If (c, v, a) -> [ s (If (c, [ s (Assign (Lvar v, a)) ], [])) ]
         | `Loop (v, iters) ->
             (* var __i = 0; while (__i < iters) { v = v + __i; __i = __i + 1; } *)
             let i = "__i_" ^ v in
             [
               s (Var_decl (i, e (Int 0)));
               s
                 (While
                    ( e (Binop (Lt, e (Var i), e (Int iters))),
                      [
                        s (Assign (Lvar v, e (Binop (Add, e (Var v), e (Var i)))));
                        s (Assign (Lvar i, e (Binop (Add, e (Var i), e (Int 1)))));
                      ] ));
             ])
       items)

let gen_function ~name =
  let params = [ "p"; "q" ] in
  let* decls = list_size (int_bound 2) (int_range 0 9) in
  let vars = params @ List.mapi (fun i _ -> Printf.sprintf "v%d" i) decls in
  let decl_stmts =
    List.mapi (fun i init -> s (Var_decl (Printf.sprintf "v%d" i, e (Int init)))) decls
  in
  let* body = gen_stmts ~vars in
  let* ret = gen_expr ~vars 2 in
  return
    {
      fn_name = name;
      fn_params = params;
      fn_body = decl_stmts @ body @ [ s (Return (Some ret)) ];
      fn_pos = pos;
    }

let gen_program =
  let* n_fns = int_range 1 3 in
  let* fns =
    flatten_l (List.init n_fns (fun i -> gen_function ~name:(Printf.sprintf "f%d" i)))
  in
  (* main: declare locals, call the functions, spawn/join one worker *)
  let* main_body = gen_stmts ~vars:[ "a"; "b" ] in
  let calls =
    List.map
      (fun f ->
        s
          (Expr
             (e (Call ("print", [ e (Call (f.fn_name, [ e (Var "a"); e (Int 3) ])) ])))) )
      fns
  in
  let spawn_join =
    [
      s (Var_decl ("t", e (Spawn ((List.hd fns).fn_name, [ e (Int 1); e (Int 2) ]))));
      s (Expr (e (Call ("join", [ e (Var "t") ]))));
    ]
  in
  let main =
    {
      fn_name = "main";
      fn_params = [];
      fn_body =
        [ s (Var_decl ("a", e (Int 5))); s (Var_decl ("b", e (Int 7))) ]
        @ main_body @ calls @ spawn_join
        @ [ s (Return (Some (e (Int 0)))) ];
      fn_pos = pos;
    }
  in
  return { decls = List.map (fun f -> Dfn f) fns @ [ Dfn main ]; source_file = "gen.mcc" }

(* --- properties -------------------------------------------------------- *)

let execute ?(seed = 1) program =
  let interp = M.Interp.create program in
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let outcome = Engine.run vm (fun () -> M.Interp.run_main interp) in
  (outcome, M.Interp.output interp)

let qc_roundtrip =
  QCheck2.Test.make ~name:"generated programs: pretty/reparse identity" ~count:150 gen_program
    (fun p ->
      let printed = M.Pretty.program p in
      let reparsed = M.Parser.parse_string ~file:"gen.mcc" printed in
      M.Pretty.program reparsed = printed)

let qc_checker_accepts =
  QCheck2.Test.make ~name:"generated programs: checker accepts" ~count:150 gen_program
    (fun p ->
      match M.Check.check p with () -> true | exception M.Check.Error _ -> false)

let qc_runs_clean =
  QCheck2.Test.make ~name:"generated programs: run without errors" ~count:100 gen_program
    (fun p ->
      let outcome, _ = execute p in
      outcome.failures = [] && outcome.deadlock = None)

let qc_annotation_preserves_output =
  QCheck2.Test.make ~name:"generated programs: annotation preserves output" ~count:100
    gen_program (fun p ->
      let annotated, _ = M.Annotate.annotate p in
      let _, out1 = execute p in
      let _, out2 = execute annotated in
      out1 = out2)

let qc_deterministic =
  QCheck2.Test.make ~name:"generated programs: deterministic per seed" ~count:60 gen_program
    (fun p ->
      let _, a = execute ~seed:9 p in
      let _, b = execute ~seed:9 p in
      a = b)

let suite =
  ( "minicc-gen",
    [
      QCheck_alcotest.to_alcotest qc_roundtrip;
      QCheck_alcotest.to_alcotest qc_checker_accepts;
      QCheck_alcotest.to_alcotest qc_runs_clean;
      QCheck_alcotest.to_alcotest qc_annotation_preserves_output;
      QCheck_alcotest.to_alcotest qc_deterministic;
    ] )
