lib/detector/lockset.mli: Format Raceguard_util
