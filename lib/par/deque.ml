(** A fixed-capacity Chase–Lev work-stealing deque.

    One owner domain pushes and pops at the {e bottom} (LIFO); any
    other domain steals from the {e top} (FIFO).  The two ends only
    meet on the last element, where a compare-and-set on [top] decides
    the race — OCaml atomics are sequentially consistent, so the
    classic Chase–Lev claim protocol carries over unchanged.

    Simplifications relative to the dynamic-buffer original (and to the
    [par-ml] DCYL exemplar):

    - the buffer never grows: the pool knows the total cell count up
      front, so [create ~capacity] allocates once and [push] raises
      {!Full} instead of resizing — no buffer-recycling epoch logic;
    - a slot is written only by the owner, and the protocol guarantees
      a thief reads a slot only when its claim of [top] succeeds, after
      the push that filled it has been published by the owner's atomic
      write to [bottom] (which the thief's read of [bottom]
      synchronised with); a failed claim discards whatever was read;
    - [steal] distinguishes {!Empty} from {!Retry} (lost a CAS race),
      so the pool can run bounded steal rounds over its victims before
      backing off, as in the exemplar.

    The record places a dead [int array] between [top] and [bottom] so
    the two contended atomics do not share a cache line (the poor
    portable cousin of [Multicore_magic.copy_as_padded]). *)

exception Full

type 'a t = {
  top : int Atomic.t;  (** next index thieves claim; only ever grows *)
  pad_ : int array;  (** spacer: keeps [top] and [bottom] on separate lines *)
  bottom : int Atomic.t;  (** owner's end; one past the last pushed slot *)
  slots : 'a option array;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Deque.create: capacity must be >= 1";
  {
    top = Atomic.make 0;
    pad_ = Array.make 15 0;
    bottom = Atomic.make 0;
    slots = Array.make capacity None;
  }

let capacity d = Array.length d.slots

(* keep the spacer alive against over-eager dead-field analysis *)
let _ = fun d -> d.pad_

let size d =
  let b = Atomic.get d.bottom and t = Atomic.get d.top in
  max 0 (b - t)

(** Owner only.  Publishing order matters: the slot write precedes the
    atomic bump of [bottom], so any thief that observes the new
    [bottom] also observes the slot contents. *)
let push d x =
  let b = Atomic.get d.bottom in
  if b >= Array.length d.slots then raise Full;
  d.slots.(b) <- Some x;
  Atomic.set d.bottom (b + 1)

(** Owner only.  Reserve the bottom slot first, then re-check against
    [top]: if the deque held more than one element the reservation is
    uncontended; on the last element the owner races thieves with the
    same CAS they use. *)
let pop d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b > t then d.slots.(b)
  else if b = t then begin
    (* exactly one element left: win it or lose it via [top] *)
    let won = Atomic.compare_and_set d.top t (t + 1) in
    Atomic.set d.bottom (t + 1);
    if won then d.slots.(b) else None
  end
  else begin
    (* already empty; undo the reservation *)
    Atomic.set d.bottom t;
    None
  end

type 'a steal_result = Stolen of 'a | Empty | Retry

(** Any domain.  [Retry] means another thief (or the owner, on the last
    element) won the CAS — the deque may still be non-empty. *)
let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then Empty
  else
    let x = d.slots.(t) in
    if Atomic.compare_and_set d.top t (t + 1) then
      match x with Some v -> Stolen v | None -> assert false
    else Retry
