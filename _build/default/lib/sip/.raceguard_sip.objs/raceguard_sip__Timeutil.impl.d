lib/sip/timeutil.ml: Char Printf Raceguard_util Raceguard_vm String
