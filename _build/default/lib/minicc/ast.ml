(** Abstract syntax for MiniC++.

    Every node that can touch memory carries the source position it
    came from, so the interpreter can attribute VM accesses to real
    lines and the race reports read like Valgrind output over the
    MiniC++ source. *)

type pos = Token.pos

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Not | Neg

type expr = { e : expr_desc; epos : pos }

and expr_desc =
  | Int of int
  | Str of string  (** string literal: used for names passed to builtins *)
  | Null
  | Var of string
  | This
  | Field of expr * string  (** [e.f] — a VM memory access *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list  (** free function or builtin *)
  | Method_call of expr * string * expr list  (** virtual dispatch via vptr *)
  | New of string  (** [new C()] *)
  | Spawn of string * expr list  (** [spawn f(args)] — returns a tid *)
  | Deletor of expr
      (** the [ca_deletor_single] wrapper inserted by the annotation
          pass (Figure 4): evaluates to its argument after announcing
          the destruction to the race detector *)

type stmt = { s : stmt_desc; spos : pos }

and stmt_desc =
  | Var_decl of string * expr
  | Assign of lvalue * expr
  | Expr of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Delete of expr
  | Lock of expr * stmt list  (** [lock (m) { ... }]: scoped mutex *)
  | Block of stmt list

and lvalue =
  | Lvar of string
  | Lfield of expr * string * pos

type fn_decl = {
  fn_name : string;
  fn_params : string list;
  fn_body : stmt list;
  fn_pos : pos;
}

type class_decl = {
  cls_name : string;
  cls_parent : string option;
  cls_fields : string list;
  cls_methods : fn_decl list;
  cls_dtor : stmt list option;  (** body of [fn ~C() { ... }] *)
  cls_pos : pos;
}

type decl = Dclass of class_decl | Dfn of fn_decl

type program = { decls : decl list; source_file : string }

let classes p = List.filter_map (function Dclass c -> Some c | Dfn _ -> None) p.decls
let functions p = List.filter_map (function Dfn f -> Some f | Dclass _ -> None) p.decls

let find_class p name = List.find_opt (fun c -> c.cls_name = name) (classes p)
let find_function p name = List.find_opt (fun f -> f.fn_name = name) (functions p)
