lib/detector/djit.ml: Fmt Hashtbl Hb_clocks List Raceguard_util Raceguard_vm Report Vector_clock
