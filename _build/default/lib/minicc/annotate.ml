(** The automatic source annotation pass (§3.1, Figure 4).

    Rewrites every [delete e;] into [delete ca_deletor_single(e);]: the
    argument is passed through a helper that announces the imminent
    destruction to the race detector via a client request, then returns
    it unchanged.  The transformation is

    - {b automatic}: no programmer interaction, "annotation is done
      on-the-fly and easily removed from the build process";
    - {b transparent}: the on-disk source is never modified — the pass
      runs between the preprocessor and the compiler;
    - {b harmless}: the client request "expands to a sequence of
      mnemonics that do nothing under normal execution".

    The pass also records how many deletes were annotated, which the
    build wrapper logs. *)

open Ast

type stats = { mutable annotated_deletes : int }

let rec map_expr st (e : expr) =
  let d =
    match e.e with
    | (Int _ | Str _ | Null | Var _ | This) as d -> d
    | Field (o, f) -> Field (map_expr st o, f)
    | Binop (op, a, b) -> Binop (op, map_expr st a, map_expr st b)
    | Unop (op, a) -> Unop (op, map_expr st a)
    | Call (name, args) -> Call (name, List.map (map_expr st) args)
    | Method_call (o, m, args) -> Method_call (map_expr st o, m, List.map (map_expr st) args)
    | New c -> New c
    | Spawn (f, args) -> Spawn (f, List.map (map_expr st) args)
    | Deletor inner -> Deletor (map_expr st inner)
  in
  { e with e = d }

let rec map_stmt st (s : stmt) =
  let d =
    match s.s with
    | Var_decl (n, e) -> Var_decl (n, map_expr st e)
    | Assign (Lvar n, e) -> Assign (Lvar n, map_expr st e)
    | Assign (Lfield (o, f, p), e) -> Assign (Lfield (map_expr st o, f, p), map_expr st e)
    | Expr e -> Expr (map_expr st e)
    | If (c, a, b) -> If (map_expr st c, List.map (map_stmt st) a, List.map (map_stmt st) b)
    | While (c, b) -> While (map_expr st c, List.map (map_stmt st) b)
    | Return e -> Return (Option.map (map_expr st) e)
    | Delete e -> (
        let e = map_expr st e in
        match e.e with
        | Deletor _ -> Delete e  (* already annotated: idempotent *)
        | _ ->
            st.annotated_deletes <- st.annotated_deletes + 1;
            Delete { e with e = Deletor e })
    | Lock (m, b) -> Lock (map_expr st m, List.map (map_stmt st) b)
    | Block b -> Block (List.map (map_stmt st) b)
  in
  { s with s = d }

let map_fn st f = { f with fn_body = List.map (map_stmt st) f.fn_body }

(** Annotate a whole program.  Returns the rewritten program and the
    number of delete expressions annotated. *)
let annotate (p : program) =
  let st = { annotated_deletes = 0 } in
  let decls =
    List.map
      (function
        | Dfn f -> Dfn (map_fn st f)
        | Dclass c ->
            Dclass
              {
                c with
                cls_methods = List.map (map_fn st) c.cls_methods;
                cls_dtor = Option.map (List.map (map_stmt st)) c.cls_dtor;
              })
      p.decls
  in
  ({ p with decls }, st.annotated_deletes)

(** Count deletes that are not yet annotated (for build diagnostics). *)
let unannotated_deletes (p : program) =
  let count = ref 0 in
  let st = { annotated_deletes = 0 } in
  let rec walk_stmt (s : stmt) =
    match s.s with
    | Delete { e = Deletor _; _ } -> ()
    | Delete _ -> incr count
    | If (_, a, b) ->
        List.iter walk_stmt a;
        List.iter walk_stmt b
    | While (_, b) | Lock (_, b) | Block b -> List.iter walk_stmt b
    | Var_decl _ | Assign _ | Expr _ | Return _ -> ()
  in
  ignore st;
  List.iter
    (function
      | Dfn f -> List.iter walk_stmt f.fn_body
      | Dclass c ->
          List.iter (fun m -> List.iter walk_stmt m.fn_body) c.cls_methods;
          Option.iter (List.iter walk_stmt) c.cls_dtor)
    p.decls;
  !count
