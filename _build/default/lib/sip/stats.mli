(** Server statistics counters — partly racy by design (bug B6): the
    fast-path counters use unlocked read-modify-write from every
    worker, the "proper" ones take a mutex. *)

module Loc = Raceguard_util.Loc

type t

(** Counter word offsets (for {!get}). *)

val total_requests : int
val total_responses : int
val parse_errors : int
val lines_logged : int
val active_calls : int
val registered_users : int
val method_base : int

val create : unit -> t

val bump_racy : t -> int -> loc:Loc.t -> unit
(** The unlocked load-increment-store (B6). *)

val incr_total_requests : t -> unit
val incr_total_responses : t -> unit
val incr_parse_errors : t -> unit
val incr_lines_logged : t -> unit

val incr_method : t -> meth_code:int -> unit
(** Per-method racy counter; out-of-range codes are ignored. *)

val incr_active_calls : t -> unit
val decr_active_calls : t -> unit
val incr_registered : t -> unit
val decr_registered : t -> unit

val get : t -> int -> loc:Loc.t -> int

val destroy : t -> annotate:bool -> unit
(** Free the counter block — half of the shutdown-order bug B3 when
    called before the logger thread is joined. *)
