(** Pure AST surgery for the repair engine.

    Every transformation preserves the source positions of untouched
    nodes, so a patched program re-analysed statically or executed
    dynamically yields stacks and signatures directly comparable with
    the original's — the property the four verification stages rest
    on.  New nodes (guard expressions, threaded arguments, guard-init
    statements) borrow the position of the construct they are attached
    to. *)

module Token = Raceguard_minicc.Token
open Raceguard_minicc.Ast

type pos = Token.pos

let pos_eq (a : pos) (b : pos) =
  a.Token.file = b.Token.file && a.Token.line = b.Token.line && a.Token.col = b.Token.col

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let rec iter_expr f e =
  f e;
  match e.e with
  | Int _ | Str _ | Null | Var _ | This | New _ -> ()
  | Field (o, _) -> iter_expr f o
  | Binop (_, a, b) ->
      iter_expr f a;
      iter_expr f b
  | Unop (_, a) -> iter_expr f a
  | Call (_, args) | Spawn (_, args) -> List.iter (iter_expr f) args
  | Method_call (o, _, args) ->
      iter_expr f o;
      List.iter (iter_expr f) args
  | Deletor a -> iter_expr f a

(** Bottom-up expression map: [f] sees each node after its children
    were rewritten. *)
let rec map_expr f e =
  let e' =
    match e.e with
    | Int _ | Str _ | Null | Var _ | This | New _ -> e
    | Field (o, n) -> { e with e = Field (map_expr f o, n) }
    | Binop (op, a, b) -> { e with e = Binop (op, map_expr f a, map_expr f b) }
    | Unop (op, a) -> { e with e = Unop (op, map_expr f a) }
    | Call (n, args) -> { e with e = Call (n, List.map (map_expr f) args) }
    | Spawn (n, args) -> { e with e = Spawn (n, List.map (map_expr f) args) }
    | Method_call (o, m, args) ->
        { e with e = Method_call (map_expr f o, m, List.map (map_expr f) args) }
    | Deletor a -> { e with e = Deletor (map_expr f a) }
  in
  f e'

let rec map_stmt fe (s : stmt) : stmt =
  let me = map_expr fe in
  let ms = List.map (map_stmt fe) in
  let s' =
    match s.s with
    | Var_decl (n, e) -> Var_decl (n, me e)
    | Assign (Lvar n, e) -> Assign (Lvar n, me e)
    | Assign (Lfield (o, f, p), e) -> Assign (Lfield (me o, f, p), me e)
    | Expr e -> Expr (me e)
    | If (c, a, b) -> If (me c, ms a, ms b)
    | While (c, b) -> While (me c, ms b)
    | Return None -> Return None
    | Return (Some e) -> Return (Some (me e))
    | Delete e -> Delete (me e)
    | Lock (m, b) -> Lock (me m, ms b)
    | Block b -> Block (ms b)
  in
  { s with s = s' }

let rec iter_stmt_exprs f (s : stmt) =
  let ie = iter_expr f in
  match s.s with
  | Var_decl (_, e) | Assign (Lvar _, e) | Expr e | Return (Some e) | Delete e -> ie e
  | Assign (Lfield (o, _, _), e) ->
      ie o;
      ie e
  | If (c, a, b) ->
      ie c;
      List.iter (iter_stmt_exprs f) a;
      List.iter (iter_stmt_exprs f) b
  | While (c, b) | Lock (c, b) ->
      ie c;
      List.iter (iter_stmt_exprs f) b
  | Return None -> ()
  | Block b -> List.iter (iter_stmt_exprs f) b

(* ------------------------------------------------------------------ *)
(* Bodies, addressed the way access stacks attribute functions         *)
(* ------------------------------------------------------------------ *)

(** Every rewritable body as [(node name, params, body)] — free
    functions as [f], methods as [C::m], destructors as [C::~C],
    matching [Static_race]'s frame attribution. *)
let bodies (p : program) : (string * string list * stmt list) list =
  List.concat_map
    (function
      | Dfn f -> [ (f.fn_name, f.fn_params, f.fn_body) ]
      | Dclass c ->
          List.map
            (fun m -> (c.cls_name ^ "::" ^ m.fn_name, m.fn_params, m.fn_body))
            c.cls_methods
          @
          (match c.cls_dtor with
          | None -> []
          | Some b -> [ (c.cls_name ^ "::~" ^ c.cls_name, [], b) ]))
    p.decls

(** Rewrite the body of one named node; returns [None] when no body by
    that name exists. *)
let map_body (p : program) ~node (f : stmt list -> stmt list) : program option =
  let found = ref false in
  let decls =
    List.map
      (function
        | Dfn fn when fn.fn_name = node ->
            found := true;
            Dfn { fn with fn_body = f fn.fn_body }
        | Dfn fn -> Dfn fn
        | Dclass c ->
            let cls_methods =
              List.map
                (fun m ->
                  if c.cls_name ^ "::" ^ m.fn_name = node then begin
                    found := true;
                    { m with fn_body = f m.fn_body }
                  end
                  else m)
                c.cls_methods
            in
            let cls_dtor =
              match c.cls_dtor with
              | Some b when c.cls_name ^ "::~" ^ c.cls_name = node ->
                  found := true;
                  Some (f b)
              | d -> d
            in
            Dclass { c with cls_methods; cls_dtor })
      p.decls
  in
  if !found then Some { p with decls } else None

(* ------------------------------------------------------------------ *)
(* Position containment                                                *)
(* ------------------------------------------------------------------ *)

let expr_mentions target e =
  let found = ref false in
  iter_expr (fun e -> if pos_eq e.epos target then found := true) e;
  !found

(** Does the statement's own code (not a nested statement) evaluate the
    target position?  [Assign] to a field also owns the field span. *)
let own_hit target s =
  let hit = ref false in
  let ck e = if expr_mentions target e then hit := true in
  (match s.s with
  | Var_decl (_, e) | Assign (Lvar _, e) | Expr e | Return (Some e) | Delete e -> ck e
  | Assign (Lfield (o, _, p), e) ->
      if pos_eq p target then hit := true;
      ck o;
      ck e
  | If (c, _, _) | While (c, _) | Lock (c, _) -> ck c
  | Return None | Block _ -> ());
  !hit

let rec stmt_mentions target s =
  own_hit target s
  ||
  match s.s with
  | If (_, a, b) -> List.exists (stmt_mentions target) (a @ b)
  | While (_, b) | Lock (_, b) | Block b -> List.exists (stmt_mentions target) b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Lock-scope wrapping                                                 *)
(* ------------------------------------------------------------------ *)

(** Wrap the minimal enclosing statement of every target position in
    [lock (guard) { ... }].  A statement covering several targets is
    wrapped once; control statements whose condition is untouched
    recurse into their branches instead of widening the critical
    section.  [guard_for] builds the guard expression for a leaf
    statement (it sees the target positions that statement covers);
    returning [None] aborts the rewrite. *)
let wrap_in_body ~guard_for ~targets body : (stmt list * int, string) result =
  let err = ref None in
  let wrapped = ref 0 in
  let rec go_stmts stmts = List.map go stmts
  and go s =
    let covered = List.filter (fun t -> stmt_mentions t s) targets in
    if covered = [] then s
    else
      let own = List.exists (fun t -> own_hit t s) covered in
      match s.s with
      | If (c, a, b) when not own -> { s with s = If (c, go_stmts a, go_stmts b) }
      | While (c, b) when not own -> { s with s = While (c, go_stmts b) }
      | Lock (m, b) when not own -> { s with s = Lock (m, go_stmts b) }
      | Block b -> { s with s = Block (go_stmts b) }
      | _ -> (
          match guard_for s covered with
          | Some g ->
              incr wrapped;
              { s with s = Lock (g, [ s ]) }
          | None ->
              err := Some "cannot build a guard expression for a statement";
              s)
  in
  let body = go_stmts body in
  match !err with Some m -> Error m | None -> Ok (body, !wrapped)

(* ------------------------------------------------------------------ *)
(* Lock threading: extra parameters and call-site arguments            *)
(* ------------------------------------------------------------------ *)

let add_param (p : program) ~fn ~param : program =
  let decls =
    List.map
      (function
        | Dfn f when f.fn_name = fn -> Dfn { f with fn_params = f.fn_params @ [ param ] }
        | d -> d)
      p.decls
  in
  { p with decls }

(** Append an argument to every call and spawn of [callee], program
    wide.  [arg_for] names the expression to pass from the enclosing
    node ([None] aborts: that call site has no lock in scope). *)
let add_args (p : program) ~callee ~(arg_for : string -> pos -> expr option) :
    (program, string) result =
  let err = ref None in
  let rewrite node e =
    match e.e with
    | Call (n, args) when n = callee -> (
        match arg_for node e.epos with
        | Some a -> { e with e = Call (n, args @ [ a ]) }
        | None ->
            if !err = None then
              err := Some (Fmt.str "call of %s in %s has no guard lock in scope" callee node);
            e)
    | Spawn (n, args) when n = callee -> (
        match arg_for node e.epos with
        | Some a -> { e with e = Spawn (n, args @ [ a ]) }
        | None ->
            if !err = None then
              err := Some (Fmt.str "spawn of %s in %s has no guard lock in scope" callee node);
            e)
    | _ -> e
  in
  let map_fn node f = { f with fn_body = List.map (map_stmt (rewrite node)) f.fn_body } in
  let decls =
    List.map
      (function
        | Dfn f -> Dfn (map_fn f.fn_name f)
        | Dclass c ->
            Dclass
              {
                c with
                cls_methods =
                  List.map (fun m -> map_fn (c.cls_name ^ "::" ^ m.fn_name) m) c.cls_methods;
                cls_dtor =
                  Option.map
                    (List.map
                       (map_stmt (rewrite (c.cls_name ^ "::~" ^ c.cls_name))))
                    c.cls_dtor;
              })
      p.decls
  in
  match !err with Some m -> Error m | None -> Ok { p with decls }

(* ------------------------------------------------------------------ *)
(* Fresh guard members                                                 *)
(* ------------------------------------------------------------------ *)

let add_class_field (p : program) ~cls ~field : program =
  let decls =
    List.map
      (function
        | Dclass c when c.cls_name = cls && not (List.mem field c.cls_fields) ->
            Dclass { c with cls_fields = c.cls_fields @ [ field ] }
        | d -> d)
      p.decls
  in
  { p with decls }

(** A guard expression must re-evaluate without side effects. *)
let rec is_pure_path e =
  match e.e with
  | Var _ | This -> true
  | Field (o, _) -> is_pure_path o
  | _ -> false

(** The base object expression of the access to [field] at [pos] inside
    one statement ([a.f] read or [a.f = ...] write). *)
let find_field_base ~field ~pos s : expr option =
  let found = ref None in
  (match s.s with
  | Assign (Lfield (o, f, p), _) when f = field && pos_eq p pos -> found := Some o
  | _ -> ());
  if !found = None then
    iter_stmt_exprs
      (fun e ->
        match e.e with
        | Field (o, f) when f = field && pos_eq e.epos pos && !found = None ->
            found := Some o
        | _ -> ())
      s;
  !found

(** Insert [<lv>.<field> = mutex(<name>);] after every statement that
    binds a fresh [new cls] to a nameable lvalue, skipping statements
    already followed by that exact initialisation (idempotent under
    combined patch application).  Fails when some [new cls] occurs in a
    position whose result cannot be named. *)
let insert_guard_inits (p : program) ~cls ~field ~name : (program * int, string) result =
  let err = ref None in
  let inserts = ref 0 in
  let bindable s =
    match s.s with
    | Var_decl (x, { e = New c; _ }) | Assign (Lvar x, { e = New c; _ }) when c = cls ->
        Some { e = Var x; epos = s.spos }
    | Assign (Lfield (o, f, fp), { e = New c; _ }) when c = cls ->
        if is_pure_path o then Some { e = Field (o, f); epos = fp }
        else None
    | _ -> None
  in
  let init_stmt base (pos : pos) =
    {
      s =
        Assign
          ( Lfield (base, field, pos),
            { e = Call ("mutex", [ { e = Str name; epos = pos } ]); epos = pos } );
      spos = pos;
    }
  in
  let is_init base s =
    match s.s with
    | Assign (Lfield (b, f, _), { e = Call ("mutex", [ { e = Str n; _ } ]); _ }) ->
        f = field && n = name && b.e = base.e
    | _ -> false
  in
  (* a [new cls] in this statement's own code anywhere except as the
     whole right-hand side of a bindable statement loses the object
     before we can name it (nested statements are visited on their
     own) *)
  let unnameable_new s =
    let bad = ref false in
    let ck e =
      iter_expr (fun e -> match e.e with New c when c = cls -> bad := true | _ -> ()) e
    in
    (match s.s with
    | Var_decl (_, { e = New c; _ }) when c = cls -> ()
    | Assign (Lvar _, { e = New c; _ }) when c = cls -> ()
    | Assign (Lfield (o, _, _), { e = New c; _ }) when c = cls -> ck o
    | Var_decl (_, e) | Assign (Lvar _, e) | Expr e | Return (Some e) | Delete e -> ck e
    | Assign (Lfield (o, _, _), e) ->
        ck o;
        ck e
    | If (c, _, _) | While (c, _) | Lock (c, _) -> ck c
    | Return None | Block _ -> ());
    !bad
  in
  let rec go_stmts stmts =
    match stmts with
    | [] -> []
    | s :: rest -> (
        let s = go s in
        match bindable s with
        | Some base ->
            let rest' =
              match rest with
              | n :: _ when is_init base n -> go_stmts rest
              | _ ->
                  incr inserts;
                  init_stmt base s.spos :: go_stmts rest
            in
            s :: rest'
        | None ->
            if unnameable_new s && !err = None then
              err :=
                Some
                  (Fmt.str "a 'new %s' result cannot be named for guard initialisation" cls);
            s :: go_stmts rest)
  and go s =
    match s.s with
    | If (c, a, b) -> { s with s = If (c, go_stmts a, go_stmts b) }
    | While (c, b) -> { s with s = While (c, go_stmts b) }
    | Lock (m, b) -> { s with s = Lock (m, go_stmts b) }
    | Block b -> { s with s = Block (go_stmts b) }
    | _ -> s
  in
  let map_fn f = { f with fn_body = go_stmts f.fn_body } in
  let decls =
    List.map
      (function
        | Dfn f -> Dfn (map_fn f)
        | Dclass c ->
            Dclass
              {
                c with
                cls_methods = List.map map_fn c.cls_methods;
                cls_dtor = Option.map go_stmts c.cls_dtor;
              })
      p.decls
  in
  match !err with Some m -> Error m | None -> Ok ({ p with decls }, !inserts)

(* ------------------------------------------------------------------ *)
(* Static lock-nesting edges                                           *)
(* ------------------------------------------------------------------ *)

module SMap = Map.Make (String)

(** The static acquisition-nesting relation: [(h, k)] when some thread
    can acquire lock [k] while holding [h].  Locks are keyed by their
    creation name string when literal (every lock in the example corpus
    and every guard the engine introduces), by creation position
    otherwise; member guards are keyed per field.  Bounded
    interprocedural walk mirroring [Static_race]'s inlining, scoped
    [lock] blocks plus the unbalanced lock builtins.  Feeds
    {!Raceguard_detector.Lock_order.Static_graph} for the
    no-new-inversion stage of patch verification. *)
let lock_nest_edges (p : program) : (string * string) list =
  let edges = ref [] in
  let add held k = List.iter (fun h -> if h <> k then edges := (h, k) :: !edges) held in
  let max_depth = 8 in
  let pending : (string * string option list) list ref = ref [] in
  let seen_roots = Hashtbl.create 8 in
  let key_of_rhs e =
    match e.e with
    | Call (("mutex" | "rwlock"), [ { e = Str n; _ } ]) -> Some n
    | Call (("mutex" | "rwlock"), _) ->
        Some (Fmt.str "%s:%d:%d" e.epos.Token.file e.epos.Token.line e.epos.Token.col)
    | _ -> None
  in
  let key_of bnd e =
    match e.e with
    | Var x -> SMap.find_opt x bnd
    | Field (_, f) -> Some ("." ^ f)
    | Call (("mutex" | "rwlock"), _) -> key_of_rhs e
    | _ -> None
  in
  let remove_first k held =
    let rec go = function
      | [] -> []
      | x :: rest -> if x = k then rest else x :: go rest
    in
    go held
  in
  let rec walk_stmts depth calls acc stmts = List.fold_left (walk_stmt depth calls) acc stmts
  and walk_stmt depth calls (bnd, held) s =
    match s.s with
    | Var_decl (x, e) | Assign (Lvar x, e) ->
        let _, held = walk_expr depth calls (bnd, held) e in
        let bnd =
          match key_of_rhs e with Some k -> SMap.add x k bnd | None -> SMap.remove x bnd
        in
        (bnd, held)
    | Assign (Lfield (o, _, _), e) ->
        let _, held = walk_expr depth calls (bnd, held) o in
        let _, held = walk_expr depth calls (bnd, held) e in
        (bnd, held)
    | Expr e | Return (Some e) | Delete e ->
        let _, held = walk_expr depth calls (bnd, held) e in
        (bnd, held)
    | Return None -> (bnd, held)
    | If (c, a, b) ->
        let _, held = walk_expr depth calls (bnd, held) c in
        let _ = walk_stmts depth calls (bnd, held) a in
        let _ = walk_stmts depth calls (bnd, held) b in
        (bnd, held)
    | While (c, b) ->
        let _, held = walk_expr depth calls (bnd, held) c in
        let _ = walk_stmts depth calls (bnd, held) b in
        (bnd, held)
    | Lock (m, body) -> (
        let _, held = walk_expr depth calls (bnd, held) m in
        match key_of bnd m with
        | Some k ->
            add held k;
            let _ = walk_stmts depth calls (bnd, k :: held) body in
            (bnd, held)
        | None ->
            let _ = walk_stmts depth calls (bnd, held) body in
            (bnd, held))
    | Block b -> walk_stmts depth calls (bnd, held) b
  and walk_expr depth calls (bnd, held) e =
    let fold_args held args =
      List.fold_left (fun h a -> snd (walk_expr depth calls (bnd, h) a)) held args
    in
    match e.e with
    | Int _ | Str _ | Null | Var _ | This | New _ -> (bnd, held)
    | Field (o, _) | Unop (_, o) | Deletor o -> walk_expr depth calls (bnd, held) o
    | Binop (_, a, b) ->
        let _, held = walk_expr depth calls (bnd, held) a in
        walk_expr depth calls (bnd, held) b
    | Call (("mutex_lock" | "wrlock" | "rdlock"), [ arg ]) -> (
        let _, held = walk_expr depth calls (bnd, held) arg in
        match key_of bnd arg with
        | Some k ->
            add held k;
            (bnd, k :: held)
        | None -> (bnd, held))
    | Call (("mutex_unlock" | "rw_unlock"), [ arg ]) -> (
        let _, held = walk_expr depth calls (bnd, held) arg in
        match key_of bnd arg with
        | Some k -> (bnd, remove_first k held)
        | None -> (bnd, held))
    | Call (name, args) -> (
        let held = fold_args held args in
        match find_function p name with
        | Some f when depth < max_depth && not (List.mem name calls) ->
            let cbnd = callee_bindings bnd f.fn_params args in
            let _ = walk_stmts (depth + 1) (name :: calls) (cbnd, held) f.fn_body in
            (bnd, held)
        | _ -> (bnd, held))
    | Spawn (name, args) ->
        let held = fold_args held args in
        pending := (name, List.map (key_of bnd) args) :: !pending;
        (bnd, held)
    | Method_call (o, m, args) ->
        let _, held = walk_expr depth calls (bnd, held) o in
        let held = fold_args held args in
        List.iter
          (fun c ->
            match List.find_opt (fun f -> f.fn_name = m) c.cls_methods with
            | Some f when depth < max_depth && not (List.mem (c.cls_name ^ "::" ^ m) calls)
              ->
                let cbnd = callee_bindings bnd f.fn_params args in
                let _ =
                  walk_stmts (depth + 1)
                    ((c.cls_name ^ "::" ^ m) :: calls)
                    (cbnd, held) f.fn_body
                in
                ()
            | _ -> ())
          (classes p);
        (bnd, held)
  and callee_bindings bnd params args =
    let keys = List.map (key_of bnd) args in
    if List.length params <> List.length keys then SMap.empty
    else
      List.fold_left2
        (fun m p k -> match k with Some k -> SMap.add p k m | None -> m)
        SMap.empty params keys
  in
  let walk_root fname arg_keys =
    let root_key = fname ^ "|" ^ String.concat "," (List.map (Option.value ~default:"?") arg_keys) in
    if not (Hashtbl.mem seen_roots root_key) then begin
      Hashtbl.replace seen_roots root_key ();
      match find_function p fname with
      | None -> ()
      | Some f ->
          let bnd =
            if List.length f.fn_params <> List.length arg_keys then SMap.empty
            else
              List.fold_left2
                (fun m prm k -> match k with Some k -> SMap.add prm k m | None -> m)
                SMap.empty f.fn_params arg_keys
          in
          let _ = walk_stmts 0 [ fname ] (bnd, []) f.fn_body in
          ()
    end
  in
  walk_root "main" [];
  let rec drain () =
    match !pending with
    | [] -> ()
    | (fname, keys) :: rest ->
        pending := rest;
        walk_root fname keys;
        drain ()
  in
  drain ();
  List.sort_uniq compare !edges
