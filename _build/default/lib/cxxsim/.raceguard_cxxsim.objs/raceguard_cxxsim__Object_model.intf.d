lib/cxxsim/object_model.mli: Raceguard_util
