module Rng = Raceguard_util.Rng
module Metrics = Raceguard_obs.Metrics
module Json = Raceguard_obs.Json

exception Out_of_memory

type datagram_decision =
  | Deliver
  | Drop
  | Duplicate
  | Delay_by of int
  | Corrupt_with of int

type t = {
  i_plan : Plan.t;
  i_off : bool;
  rng_datagram : Rng.t;
  rng_alloc : Rng.t;
  rng_spawn : Rng.t;
  rng_lock : Rng.t;
  mutable allocs_seen : int;
  mutable n_dropped : int;
  mutable n_duplicated : int;
  mutable n_delayed : int;
  mutable n_corrupted : int;
  mutable n_alloc_failures : int;
  mutable n_spawn_delays : int;
  mutable n_lock_delays : int;
}

(* Process-wide registry counters: one per category, shared by every
   injector instance (per-run deltas come from Metrics.diff). *)
let m_dropped = Metrics.counter "faults.injected.datagram_drop"
let m_duplicated = Metrics.counter "faults.injected.datagram_duplicate"
let m_delayed = Metrics.counter "faults.injected.datagram_delay"
let m_corrupted = Metrics.counter "faults.injected.datagram_corrupt"
let m_alloc = Metrics.counter "faults.injected.alloc_failure"
let m_spawn = Metrics.counter "faults.injected.spawn_delay"
let m_lock = Metrics.counter "faults.injected.lock_delay"

let hash_name name =
  (* djb2, as elsewhere in the repo; mixes the plan identity into the
     seed so two plans under the same run seed draw distinct streams. *)
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) name;
  !h

let create ~seed ~plan =
  let root = Rng.create ~seed:(seed lxor (hash_name plan.Plan.p_name * 2654435761)) in
  (* Fixed split order — part of the determinism contract. *)
  let rng_datagram = Rng.split root in
  let rng_alloc = Rng.split root in
  let rng_spawn = Rng.split root in
  let rng_lock = Rng.split root in
  {
    i_plan = plan;
    i_off = Plan.is_none plan;
    rng_datagram;
    rng_alloc;
    rng_spawn;
    rng_lock;
    allocs_seen = 0;
    n_dropped = 0;
    n_duplicated = 0;
    n_delayed = 0;
    n_corrupted = 0;
    n_alloc_failures = 0;
    n_spawn_delays = 0;
    n_lock_delays = 0;
  }

let plan t = t.i_plan
let is_off t = t.i_off

let roll rng per_mille = per_mille > 0 && Rng.chance rng ~num:per_mille ~den:1000

let ticks_in rng (lo, hi) =
  if hi <= lo then max 1 lo else Rng.int_in_range rng ~lo ~hi

let datagram t =
  if t.i_off then Deliver
  else begin
    let d = t.i_plan.Plan.p_datagram in
    (* One category per datagram, checked in fixed order; each check
       consumes from the same stream so outcomes stay reproducible. *)
    if roll t.rng_datagram d.Plan.drop then begin
      t.n_dropped <- t.n_dropped + 1;
      Metrics.incr m_dropped;
      Drop
    end
    else if roll t.rng_datagram d.Plan.duplicate then begin
      t.n_duplicated <- t.n_duplicated + 1;
      Metrics.incr m_duplicated;
      Duplicate
    end
    else if roll t.rng_datagram d.Plan.delay then begin
      t.n_delayed <- t.n_delayed + 1;
      Metrics.incr m_delayed;
      Delay_by (ticks_in t.rng_datagram d.Plan.delay_ticks)
    end
    else if roll t.rng_datagram d.Plan.reorder then begin
      t.n_delayed <- t.n_delayed + 1;
      Metrics.incr m_delayed;
      Delay_by (ticks_in t.rng_datagram d.Plan.delay_ticks)
    end
    else if roll t.rng_datagram d.Plan.corrupt then begin
      t.n_corrupted <- t.n_corrupted + 1;
      Metrics.incr m_corrupted;
      Corrupt_with (1 + Rng.int t.rng_datagram 255)
    end
    else Deliver
  end

let alloc_fails t =
  if t.i_off || t.i_plan.Plan.p_alloc_failure = 0 then false
  else begin
    t.allocs_seen <- t.allocs_seen + 1;
    if t.allocs_seen <= t.i_plan.Plan.p_alloc_failure_after then false
    else if roll t.rng_alloc t.i_plan.Plan.p_alloc_failure then begin
      t.n_alloc_failures <- t.n_alloc_failures + 1;
      Metrics.incr m_alloc;
      true
    end
    else false
  end

let spawn_delay t =
  if t.i_off || not (roll t.rng_spawn t.i_plan.Plan.p_spawn_delay) then 0
  else begin
    t.n_spawn_delays <- t.n_spawn_delays + 1;
    Metrics.incr m_spawn;
    ticks_in t.rng_spawn t.i_plan.Plan.p_spawn_delay_ticks
  end

let lock_delay t =
  if t.i_off || not (roll t.rng_lock t.i_plan.Plan.p_lock_delay) then 0
  else begin
    t.n_lock_delays <- t.n_lock_delays + 1;
    Metrics.incr m_lock;
    ticks_in t.rng_lock t.i_plan.Plan.p_lock_delay_ticks
  end

let corrupt_wire ~key wire =
  (* Flip a few bytes at key-derived positions; keep length so buffer
     bookkeeping downstream is unaffected.  Deterministic in (key, wire). *)
  let b = Bytes.of_string wire in
  let n = Bytes.length b in
  if n > 0 then begin
    let flips = 1 + (key land 3) in
    for i = 0 to flips - 1 do
      let pos = (key * (i + 7) * 31) mod n in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (key land 0x7F) lxor 0x20))
    done
  end;
  Bytes.to_string b

type counts = {
  c_dropped : int;
  c_duplicated : int;
  c_delayed : int;
  c_corrupted : int;
  c_alloc_failures : int;
  c_spawn_delays : int;
  c_lock_delays : int;
}

let counts t =
  {
    c_dropped = t.n_dropped;
    c_duplicated = t.n_duplicated;
    c_delayed = t.n_delayed;
    c_corrupted = t.n_corrupted;
    c_alloc_failures = t.n_alloc_failures;
    c_spawn_delays = t.n_spawn_delays;
    c_lock_delays = t.n_lock_delays;
  }

let total c =
  c.c_dropped + c.c_duplicated + c.c_delayed + c.c_corrupted
  + c.c_alloc_failures + c.c_spawn_delays + c.c_lock_delays

let counts_to_json c =
  Json.Obj
    [
      ("dropped", Json.int c.c_dropped);
      ("duplicated", Json.int c.c_duplicated);
      ("delayed", Json.int c.c_delayed);
      ("corrupted", Json.int c.c_corrupted);
      ("alloc_failures", Json.int c.c_alloc_failures);
      ("spawn_delays", Json.int c.c_spawn_delays);
      ("lock_delays", Json.int c.c_lock_delays);
    ]
