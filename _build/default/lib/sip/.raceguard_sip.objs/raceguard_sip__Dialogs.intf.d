lib/sip/dialogs.mli: Raceguard_cxxsim Stats
