(** Simulated datagram transport (the "kernel" socket).

    The test drivers (the SIPp stand-in) and the server exchange wire
    messages through this module.  Payload strings travel through a
    host-level queue — the kernel's socket buffer, invisible to the
    race detector, exactly as a real kernel is invisible to Helgrind.
    A VM semaphore provides the blocking [recvfrom] behaviour.

    On [recv] the payload is copied into a {e freshly allocated} VM
    buffer by the receiving thread — modelling the [read(2)] syscall
    copying into the caller's buffer in the caller's context, which is
    how Valgrind attributes syscall memory effects.

    When a fault {!Raceguard_faults.Injector} is attached, each
    datagram (except those from the ["admin"] control endpoint) may be
    dropped, duplicated, postponed or corrupted.  Postponed datagrams
    sit in a host-side holding list and are flushed into their inbox by
    subsequent transport activity ([send] and {!recv_deadline} polls) —
    fully deterministic in (seed, plan). *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Metrics = Raceguard_obs.Metrics
module Injector = Raceguard_faults.Injector

let lc func line = Loc.v "transport.cpp" func line

let m_unroutable = Metrics.counter "sip.transport.dropped_unroutable"
let m_fault_dropped = Metrics.counter "sip.transport.dropped_fault"

type endpoint = {
  name : string;
  inbox : (string * string) Queue.t;  (** (source, wire) — host level *)
  ready : Api.Sem.t;
  mutable dropped : int;
}

type delivery =
  | Delivered
  | Dropped_unroutable
  | Dropped_fault
  | Delayed_fault

type t = {
  endpoints : (string, endpoint) Hashtbl.t;
  faults : Injector.t option;
  mutable held : (int * int * endpoint * string * string) list;
      (** (due, seq, dst, src, wire): postponed datagrams, kept sorted
          by (due, seq) so flush order is deterministic *)
  mutable held_seq : int;
}

let create ?faults () = { endpoints = Hashtbl.create 8; faults; held = []; held_seq = 0 }

(** Must be called from inside the VM (it creates a semaphore). *)
let endpoint t name =
  match Hashtbl.find_opt t.endpoints name with
  | Some ep -> ep
  | None ->
      let ep =
        {
          name;
          inbox = Queue.create ();
          ready = Api.Sem.create ~loc:(lc "socket" 10) ~init:0 (name ^ ".sock");
          dropped = 0;
        }
      in
      Hashtbl.replace t.endpoints name ep;
      ep

let deliver ep ~src wire =
  Queue.push (src, wire) ep.inbox;
  Api.Sem.post ~loc:(lc "sendto" 24) ep.ready

(** Flush every postponed datagram whose due time has passed.  Called
    from [send] and from [recv_deadline] poll iterations, both inside
    the VM. *)
let flush_held t =
  match t.held with
  | [] -> ()
  | held ->
      let now = Api.now () in
      let due, still = List.partition (fun (d, _, _, _, _) -> d <= now) held in
      if due <> [] then begin
        t.held <- still;
        List.iter (fun (_, _, ep, src, wire) -> deliver ep ~src wire) due
      end

let hold t ~due ep ~src wire =
  let entry = (due, t.held_seq, ep, src, wire) in
  t.held_seq <- t.held_seq + 1;
  t.held <- List.merge compare t.held [ entry ]

(** Send [wire] from [src] to the endpoint named [dst]. *)
let send t ~src ~dst wire =
  flush_held t;
  match Hashtbl.find_opt t.endpoints dst with
  | None ->
      (* unknown destination: the datagram is unroutable — count it and
         tell the caller instead of losing mail silently *)
      Metrics.incr m_unroutable;
      Dropped_unroutable
  | Some ep -> (
      match t.faults with
      | Some inj when src <> "admin" -> (
          (* the admin control plane (clean-shutdown stop message) is
             exempt so every run can still terminate *)
          match Injector.datagram inj with
          | Injector.Deliver ->
              deliver ep ~src wire;
              Delivered
          | Injector.Drop ->
              ep.dropped <- ep.dropped + 1;
              Metrics.incr m_fault_dropped;
              Dropped_fault
          | Injector.Duplicate ->
              deliver ep ~src wire;
              deliver ep ~src wire;
              Delivered
          | Injector.Delay_by d ->
              hold t ~due:(Api.now () + d) ep ~src wire;
              Delayed_fault
          | Injector.Corrupt_with key ->
              deliver ep ~src (Injector.corrupt_wire ~key wire);
              Delivered)
      | _ ->
          deliver ep ~src wire;
          Delivered)

(** Blocking receive: returns the source endpoint name, the address of
    a fresh VM buffer holding the payload (one char per word), and its
    length.  The caller owns (and must free) the buffer. *)
let recv _t ep =
  Api.Sem.wait ~loc:(lc "recvfrom" 31) ep.ready;
  let src, wire = Queue.pop ep.inbox in
  let len = String.length wire in
  let buf = Api.alloc ~loc:(lc "recvfrom" 34) (max 1 len) in
  String.iteri (fun i c -> Api.write ~loc:(lc "recvfrom" 35) (buf + i) (Char.code c)) wire;
  (src, buf, len)

let recv_poll_quantum = 5

(** Receive with a deadline: polls so that postponed datagrams keep
    flowing even while every other thread sleeps.  Sound because each
    endpoint has a single reader (checking [Queue.length] host-side
    then doing a non-blocking [Sem.wait] cannot race with another
    consumer).  Returns [None] once [Api.now () >= deadline] with
    nothing delivered. *)
let rec recv_deadline t ep ~deadline =
  flush_held t;
  if Queue.length ep.inbox > 0 then Some (recv t ep)
  else if Api.now () >= deadline then None
  else begin
    Api.sleep recv_poll_quantum;
    recv_deadline t ep ~deadline
  end

(** Read a received buffer back into a host string (VM reads). *)
let read_buffer buf len =
  String.init len (fun i -> Char.chr (Api.read ~loc:(lc "recvfrom" 41) (buf + i) land 0xff))

(** Non-VM helpers for test drivers inspecting their own inbox after
    the run finished. *)
let drain_host ep =
  let out = ref [] in
  Queue.iter (fun m -> out := m :: !out) ep.inbox;
  List.rev !out

let pending ep = Queue.length ep.inbox

let held_count t = List.length t.held
