lib/minicc/parser.ml: Ast Lexer List Printf Token
