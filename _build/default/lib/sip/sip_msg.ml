(** SIP message wire format (RFC 3261 subset) and the in-VM object
    representation used by the server.

    The wire side (building and parsing strings) gives the workload
    driver a SIPp-like vocabulary.  The parser runs {e inside} the
    server: it reads the received buffer word by word through the VM,
    then materialises a [SipRequest]/[SipResponse] object whose header
    values are copy-on-write {!Raceguard_cxxsim.Refstring}s — the
    object and string traffic is what feeds the detector. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Obj_model = Raceguard_cxxsim.Object_model
module Refstring = Raceguard_cxxsim.Refstring

type meth = INVITE | ACK | BYE | CANCEL | REGISTER | OPTIONS

let meth_to_string = function
  | INVITE -> "INVITE"
  | ACK -> "ACK"
  | BYE -> "BYE"
  | CANCEL -> "CANCEL"
  | REGISTER -> "REGISTER"
  | OPTIONS -> "OPTIONS"

let meth_of_string = function
  | "INVITE" -> Some INVITE
  | "ACK" -> Some ACK
  | "BYE" -> Some BYE
  | "CANCEL" -> Some CANCEL
  | "REGISTER" -> Some REGISTER
  | "OPTIONS" -> Some OPTIONS
  | _ -> None

let meth_code = function
  | INVITE -> 1
  | ACK -> 2
  | BYE -> 3
  | CANCEL -> 4
  | REGISTER -> 5
  | OPTIONS -> 6

(* ------------------------------------------------------------------ *)
(* Wire format                                                         *)
(* ------------------------------------------------------------------ *)

type wire_request = {
  w_meth : meth;
  w_uri : string;
  w_from : string;
  w_to : string;
  w_call_id : string;
  w_cseq : int;
  w_contact : string;  (** empty when absent *)
  w_expires : int;  (** -1 when absent *)
  w_auth : int;  (** digest response from an Authorization header; 0 when absent *)
}

let request_to_wire r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s %s SIP/2.0\r\n" (meth_to_string r.w_meth) r.w_uri);
  Buffer.add_string b (Printf.sprintf "From: %s\r\n" r.w_from);
  Buffer.add_string b (Printf.sprintf "To: %s\r\n" r.w_to);
  Buffer.add_string b (Printf.sprintf "Call-ID: %s\r\n" r.w_call_id);
  Buffer.add_string b (Printf.sprintf "CSeq: %d %s\r\n" r.w_cseq (meth_to_string r.w_meth));
  if r.w_contact <> "" then Buffer.add_string b (Printf.sprintf "Contact: %s\r\n" r.w_contact);
  if r.w_expires >= 0 then Buffer.add_string b (Printf.sprintf "Expires: %d\r\n" r.w_expires);
  if r.w_auth <> 0 then
    Buffer.add_string b (Printf.sprintf "Authorization: Digest response=%d\r\n" r.w_auth);
  Buffer.add_string b "\r\n";
  Buffer.contents b

(** Minimal response decoding for the driver-side oracle. *)
let wire_status wire =
  if String.length wire > 12 && String.sub wire 0 8 = "SIP/2.0 " then
    int_of_string_opt (String.sub wire 8 3)
  else None

let wire_header wire name =
  let prefix = name ^ ": " in
  String.split_on_char '\n' wire
  |> List.find_map (fun line ->
         let line = String.trim line in
         if String.length line > String.length prefix
            && String.sub line 0 (String.length prefix) = prefix
         then Some (String.sub line (String.length prefix) (String.length line - String.length prefix))
         else None)

(* ------------------------------------------------------------------ *)
(* In-VM message objects                                               *)
(* ------------------------------------------------------------------ *)

(* class MessageBase { RefString from_, to_, call_id; int cseq; } *)
let message_base =
  Obj_model.define ~name:"MessageBase"
    ~fields:[ "from"; "to"; "call_id"; "cseq" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"sip_msg.cpp" ~base_line:62 cls obj
        ~strings:[ "from"; "to"; "call_id" ] ~ints:[ "cseq" ])
    ()

(* class RoutedMessage : MessageBase { RefString via, branch; int max_forwards; } *)
let routed_message =
  Obj_model.define ~parent:message_base ~name:"RoutedMessage"
    ~fields:[ "via"; "branch"; "max_forwards" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"sip_msg.cpp" ~base_line:72 cls obj
        ~strings:[ "via"; "branch" ] ~ints:[ "max_forwards" ])
    ()

(* class SipRequest : RoutedMessage
     { int method; RefString uri, contact, user_agent; int expires; } *)
let sip_request =
  Obj_model.define ~parent:routed_message ~name:"SipRequest"
    ~fields:[ "method"; "uri"; "contact"; "user_agent"; "expires"; "auth_response" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"sip_msg.cpp" ~base_line:82 cls obj
        ~strings:[ "uri"; "contact"; "user_agent" ] ~ints:[ "expires"; "method"; "auth_response" ])
    ()

(* class SipResponse : RoutedMessage { int status; RefString reason; } *)
let sip_response =
  Obj_model.define ~parent:routed_message ~name:"SipResponse"
    ~fields:[ "status"; "reason"; "www_auth" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"sip_msg.cpp" ~base_line:94 cls obj ~strings:[ "reason" ]
        ~ints:[ "status"; "www_auth" ])
    ()

(* ------------------------------------------------------------------ *)
(* Parsing (runs in the server, reads the VM receive buffer)           *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_loc line = Loc.v "parser.cpp" "SipParser::parse" line

(** Parse a received buffer into a host-side view, reading every byte
    through the VM in the calling (worker) thread's context. *)
let parse_request buf len =
  let text =
    String.init len (fun i -> Char.chr (Api.read ~loc:(parse_loc 100) (buf + i) land 0xff))
  in
  let lines = String.split_on_char '\n' text |> List.map String.trim in
  match lines with
  | [] -> raise (Parse_error "empty message")
  | request_line :: headers -> (
      match String.split_on_char ' ' request_line with
      | [ m; uri; "SIP/2.0" ] -> (
          match meth_of_string m with
          | None -> raise (Parse_error ("unknown method " ^ m))
          | Some w_meth ->
              let find name =
                let prefix = name ^ ": " in
                List.find_map
                  (fun l ->
                    if String.length l >= String.length prefix
                       && String.sub l 0 (String.length prefix) = prefix
                    then Some (String.sub l (String.length prefix) (String.length l - String.length prefix))
                    else None)
                  headers
              in
              let required name =
                match find name with
                | Some v -> v
                | None -> raise (Parse_error ("missing header " ^ name))
              in
              let cseq =
                match String.split_on_char ' ' (required "CSeq") with
                | n :: _ -> ( match int_of_string_opt n with Some n -> n | None -> raise (Parse_error "bad CSeq"))
                | [] -> raise (Parse_error "bad CSeq")
              in
              {
                w_meth;
                w_uri = uri;
                w_from = required "From";
                w_to = required "To";
                w_call_id = required "Call-ID";
                w_cseq = cseq;
                w_contact = (match find "Contact" with Some c -> c | None -> "");
                w_expires =
                  (match find "Expires" with
                  | Some e -> ( match int_of_string_opt e with Some e -> e | None -> -1)
                  | None -> -1);
                w_auth =
                  (match find "Authorization" with
                  | Some a -> (
                      match String.index_opt a '=' with
                      | Some i -> (
                          match
                            int_of_string_opt
                              (String.trim (String.sub a (i + 1) (String.length a - i - 1)))
                          with
                          | Some v -> v
                          | None -> 0)
                      | None -> 0)
                  | None -> 0);
              })
      | _ -> raise (Parse_error "malformed request line"))

(** Materialise a parsed request as a VM object owned by the calling
    thread. *)
let build_request_object ~loc w =
  Obj_model.new_ ~loc sip_request ~init:(fun obj ->
      let cls = sip_request in
      Obj_model.set ~loc cls obj "from" (Refstring.create ~loc w.w_from);
      Obj_model.set ~loc cls obj "to" (Refstring.create ~loc w.w_to);
      Obj_model.set ~loc cls obj "call_id" (Refstring.create ~loc w.w_call_id);
      Obj_model.set ~loc cls obj "cseq" w.w_cseq;
      Obj_model.set ~loc cls obj "via"
        (Refstring.create ~loc ("SIP/2.0/UDP client.invalid;received=10.0.0.1"));
      Obj_model.set ~loc cls obj "branch" (Refstring.create ~loc ("z9hG4bK-" ^ w.w_call_id));
      Obj_model.set ~loc cls obj "max_forwards" 70;
      Obj_model.set ~loc cls obj "method" (meth_code w.w_meth);
      Obj_model.set ~loc cls obj "uri" (Refstring.create ~loc w.w_uri);
      Obj_model.set ~loc cls obj "contact"
        (if w.w_contact = "" then 0 else Refstring.create ~loc w.w_contact);
      Obj_model.set ~loc cls obj "user_agent" (Refstring.create ~loc "SIPp-sim/1.0");
      Obj_model.set ~loc cls obj "expires" w.w_expires;
      Obj_model.set ~loc cls obj "auth_response" w.w_auth)

(** Build a response object.  Header strings are {e copied} from the
    request object and the reason phrase is copied from the server's
    shared canned-string table — every copy of a rep shared across
    threads is a bus-locked refcount increment preceded by a plain
    read, the Figure 8 pattern. *)
let build_response_object ~loc ?(www_auth = 0) ~status ~reason_rs req_obj =
  let rc = sip_request in
  Obj_model.new_ ~loc sip_response ~init:(fun obj ->
      let cls = sip_response in
      Obj_model.set ~loc cls obj "from" (Refstring.copy (Obj_model.get ~loc rc req_obj "from"));
      Obj_model.set ~loc cls obj "to" (Refstring.copy (Obj_model.get ~loc rc req_obj "to"));
      Obj_model.set ~loc cls obj "call_id"
        (Refstring.copy (Obj_model.get ~loc rc req_obj "call_id"));
      Obj_model.set ~loc cls obj "cseq" (Obj_model.get ~loc rc req_obj "cseq");
      Obj_model.set ~loc cls obj "via" (Refstring.copy (Obj_model.get ~loc rc req_obj "via"));
      Obj_model.set ~loc cls obj "branch"
        (Refstring.copy (Obj_model.get ~loc rc req_obj "branch"));
      Obj_model.set ~loc cls obj "max_forwards" 70;
      Obj_model.set ~loc cls obj "status" status;
      Obj_model.set ~loc cls obj "www_auth" www_auth;
      Obj_model.set ~loc cls obj "reason" (Refstring.copy reason_rs))

(** Serialise a response object to its wire form (VM reads). *)
let serialize_response ~loc obj =
  let cls = sip_response in
  let s field = Refstring.to_string (Obj_model.get ~loc cls obj field) in
  let status = Obj_model.get ~loc cls obj "status" in
  let cseq = Obj_model.get ~loc cls obj "cseq" in
  let www_auth = Obj_model.get ~loc cls obj "www_auth" in
  let auth_header =
    if www_auth <> 0 then Printf.sprintf "WWW-Authenticate: Digest nonce=%d\r\n" www_auth
    else ""
  in
  Printf.sprintf "SIP/2.0 %d %s\r\nFrom: %s\r\nTo: %s\r\nCall-ID: %s\r\nCSeq: %d\r\n%s\r\n"
    status (s "reason") (s "from") (s "to") (s "call_id") cseq auth_header
