(** The C++ object model, reduced to its memory behaviour.

    Objects live in VM memory as [vptr :: fields]; constructors install
    the vtable pointer level by level (base→derived) and destructors
    re-install it level by level (derived→base) before the memory is
    released — the write pattern behind the paper's dominant
    false-positive class (§4.2.1), which the DR annotation suppresses
    via a [VALGRIND_HG_DESTRUCT] client request ahead of the chain. *)

module Loc = Raceguard_util.Loc

type class_desc = {
  cls_name : string;
  parent : class_desc option;
  own_fields : string list;
  dtor_body : (t -> int -> unit) option;
      (** user destructor body for this level: receives the class (for
          field access) and the object address *)
}

and t = class_desc

val define :
  ?parent:class_desc ->
  ?dtor_body:(t -> int -> unit) ->
  name:string ->
  fields:string list ->
  unit ->
  class_desc
(** Define a class (single inheritance via [parent]). *)

val vtable_id : class_desc -> int
(** Stable per-class vtable identifier (what the vptr slot holds). *)

val chain : class_desc -> class_desc list
(** Base-most first. *)

val all_fields : class_desc -> string list
(** Inherited first, declaration order. *)

val size : class_desc -> int
(** Object size in words: 1 (vptr) + all fields. *)

val field_offset : class_desc -> string -> int
(** Word offset within the object; raises [Invalid_argument] for an
    unknown field. *)

val scrub :
  file:string ->
  base_line:int ->
  class_desc ->
  int ->
  strings:string list ->
  ints:string list ->
  unit
(** Destructor-body helper: release each ref-counted string field and
    zero each plain field, one source line per member — compiled
    destructors touch each member at a distinct instruction, so each
    member is a distinct report site. *)

val new_ : loc:Loc.t -> ?init:(int -> unit) -> class_desc -> int
(** [operator new] + constructor chain; [init] runs as the most-derived
    constructor body.  Returns the object address. *)

val vptr : loc:Loc.t -> int -> int
(** Read the vptr — what a virtual call does before dispatching. *)

val get : loc:Loc.t -> class_desc -> int -> string -> int
val set : loc:Loc.t -> class_desc -> int -> string -> int -> unit

val delete_ : loc:Loc.t -> annotate:bool -> class_desc -> int -> unit
(** Destructor chain + [operator delete]; a no-op on the null address.
    With [annotate] (the instrumented build, Figure 4) a
    [VALGRIND_HG_DESTRUCT] request precedes the chain. *)
