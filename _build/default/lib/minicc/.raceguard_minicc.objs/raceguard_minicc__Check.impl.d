lib/minicc/check.ml: Ast Fmt Hashtbl List Token
