module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Obj_model = Raceguard_cxxsim.Object_model
module Containers = Raceguard_cxxsim.Containers
module Metrics = Raceguard_obs.Metrics

let lc func line = Loc.v "txn_cache.cpp" ("TxnCache::" ^ func) line

let m_hits = Metrics.counter "sip.resilience.retransmit_absorbed"

(* class TxnEntry { int key; int status; int hits; int stamp; } *)
let txn_entry_class =
  Obj_model.define ~name:"TxnEntry" ~fields:[ "key"; "status"; "hits"; "stamp" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"txn_cache.cpp" ~base_line:14 cls obj ~strings:[]
        ~ints:[ "key"; "status"; "hits"; "stamp" ])
    ()

type t = {
  rw : Api.Rwlock.t;
  entries : Containers.Map.t;  (** key -> TxnEntry address *)
  wires : (int, string) Hashtbl.t;
      (** host-side mirror of the full response payloads (the byte
          buffers a real cache would hold in the entry); keyed like the
          VM map and updated only while holding the write lock *)
  annotate : bool;
  mutable hit_count : int;
}

let create ~alloc ~annotate =
  {
    rw = Api.Rwlock.create ~loc:(lc "TxnCache" 20) "txn_cache.rwlock";
    entries = Containers.Map.create alloc;
    wires = Hashtbl.create 32;
    annotate;
    hit_count = 0;
  }

let key ~call_id ~cseq ~meth =
  Registrar.hash_string (Fmt.str "%s|%d|%d" call_id cseq meth)

let lookup t ~key =
  let loc = lc "lookup" 30 in
  Api.with_frame loc @@ fun () ->
  Api.Rwlock.with_rdlock ~loc t.rw (fun () ->
      match Containers.Map.find t.entries key with
      | Some entry when entry <> 0 ->
          (* hit counter: written under the read lock, so it must be a
             bus-locked increment (concurrent readers) *)
          ignore
            (Api.atomic_incr ~loc:(lc "lookup" 34)
               (entry + Obj_model.field_offset txn_entry_class "hits"));
          t.hit_count <- t.hit_count + 1;
          Metrics.incr m_hits;
          Hashtbl.find_opt t.wires key
      | _ -> None)

let store t ~key ~status ~wire =
  let loc = lc "store" 42 in
  Api.with_frame loc @@ fun () ->
  let entry =
    Obj_model.new_ ~loc txn_entry_class ~init:(fun obj ->
        let cls = txn_entry_class in
        Obj_model.set ~loc cls obj "key" key;
        Obj_model.set ~loc cls obj "status" status;
        Obj_model.set ~loc cls obj "hits" 0;
        Obj_model.set ~loc cls obj "stamp" (Api.now ()))
  in
  let old =
    Api.Rwlock.with_wrlock ~loc t.rw (fun () ->
        let old = Containers.Map.find t.entries key in
        Containers.Map.insert t.entries key entry;
        Hashtbl.replace t.wires key wire;
        old)
  in
  match old with
  | Some o when o <> 0 ->
      (* unlinked under the write lock, private again: delete outside *)
      Obj_model.delete_ ~loc:(lc "store" 55) ~annotate:t.annotate txn_entry_class o
  | _ -> ()

let size t =
  Api.Rwlock.with_rdlock ~loc:(lc "size" 60) t.rw (fun () ->
      Containers.Map.size t.entries)

let hits t = t.hit_count

let destroy t =
  let loc = lc "~TxnCache" 66 in
  Api.with_frame loc @@ fun () ->
  let victims = ref [] in
  Api.Rwlock.with_wrlock ~loc t.rw (fun () ->
      Containers.Map.iter t.entries (fun _ e -> if e <> 0 then victims := e :: !victims);
      Containers.Map.clear t.entries;
      Hashtbl.reset t.wires);
  List.iter
    (fun e -> Obj_model.delete_ ~loc:(lc "~TxnCache" 71) ~annotate:t.annotate txn_entry_class e)
    !victims
