lib/core/scenarios.ml: Raceguard_cxxsim Raceguard_util Raceguard_vm
