(** Fixed-capacity Chase–Lev work-stealing deque.

    One owner domain pushes/pops at the bottom (LIFO); other domains
    steal from the top (FIFO).  All claim decisions go through
    sequentially-consistent atomics; slots are only read by a thief
    whose claim succeeded.  The buffer never grows — the pool sizes it
    to the cell count up front. *)

type 'a t

exception Full
(** Raised by {!push} past [capacity] — the pool pre-sizes, so hitting
    this is a caller bug, not a runtime condition to handle. *)

val create : capacity:int -> 'a t
val capacity : 'a t -> int

val size : 'a t -> int
(** Racy snapshot — exact only while no other domain is mutating. *)

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only; takes the most recently pushed element. *)

type 'a steal_result =
  | Stolen of 'a
  | Empty  (** nothing to take at the time of the attempt *)
  | Retry  (** lost a CAS race; the deque may still hold work *)

val steal : 'a t -> 'a steal_result
(** Any domain; takes the oldest element. *)
