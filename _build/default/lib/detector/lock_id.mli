(** Unified lock identifiers for lock-sets: the virtual hardware bus
    lock (uid 0), program mutexes (odd uids) and rw-locks (even
    uids > 0) share one id space. *)

type t = int

val bus : t
val of_mutex : int -> t
val of_rwlock : int -> t
val is_bus : t -> bool
val pp : name_of:(t -> string) -> Format.formatter -> t -> unit

val of_sync_ref : Raceguard_vm.Event.sync_ref -> t option
(** [None] for condition variables and semaphores (not locks). *)
