(** Time formatting with a static buffer — the §4.1.3 bug.

    "The four functions asctime(), ctime(), gmtime() and localtime()
    return a pointer to static data and hence are NOT thread-safe."
    The application under test called them from worker threads; the
    tool reported the races.  We reproduce the pattern: one static
    buffer, written then read on every call, with no lock. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api

let lc func line = Loc.v "time.c" func line

type t = { static_buf : int }

let buf_len = 8

(** Initialise the C library's static storage (done once by "the
    runtime" before main). *)
let create () = { static_buf = Api.alloc ~loc:(lc "__libc_init" 1) buf_len }

(** [ctime]-alike: formats the current virtual time into the static
    buffer and returns its address.  Writes shared static data without
    synchronisation — a genuine data race when called from several
    threads. *)
let ctime t =
  let now = Api.now () in
  let digits = Printf.sprintf "%08d" (now mod 100_000_000) in
  String.iteri
    (fun i c -> Api.write ~loc:(lc "ctime" 22) (t.static_buf + i) (Char.code c))
    digits;
  t.static_buf

(** Read the formatted text out of the static buffer (more racy
    accesses, on the reader side). *)
let read_formatted t addr =
  ignore t;
  String.init buf_len (fun i -> Char.chr (Api.read ~loc:(lc "ctime_read" 30) (addr + i) land 0xff))
