lib/sip/dialogs.ml: Raceguard_cxxsim Raceguard_util Raceguard_vm Registrar Stats
