(** Predictive deadlock detection by lock-order analysis.

    Records the order in which threads nest lock acquisitions; an
    acquisition that closes a cycle in the order graph is reported as a
    potential deadlock, even on runs where the timing happened to be
    benign — the capability that makes the application's home-grown
    timeout detector (§3.3/§4.1) unnecessary. *)

type t

val create : ?suppressions:Suppression.t list -> unit -> t
val tool : t -> Raceguard_vm.Tool.t

val reports : t -> Report.t list
val locations : t -> (Report.t * int) list
(** One report per unordered lock pair (deduplicated). *)

val location_count : t -> int
val collector : t -> Report.collector
