(** Semantic checks for MiniC++ programs, performed between parsing and
    annotation/interpretation: acyclic hierarchy, no duplicates,
    variables defined before use, [this] only in methods, known
    functions with matching arities, a parameterless [main]. *)

exception Error of string * Token.pos

val builtins : (string * int) list
(** Builtin functions and their arities. *)

val check : Ast.program -> unit
(** Raises {!Error} on the first violation. *)
