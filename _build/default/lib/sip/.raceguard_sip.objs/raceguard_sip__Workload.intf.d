lib/sip/workload.mli: Proxy Sip_msg Transport
