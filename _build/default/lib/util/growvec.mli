(** Growable vector (OCaml 5.1 has no [Dynarray] yet): append-heavy
    storage for memory pages, thread tables, segment graphs, traces. *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] fills unused capacity; it is never observable. *)

val length : 'a t -> int

val push : 'a t -> 'a -> int
(** Append; returns the element's index. *)

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val clear : 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
