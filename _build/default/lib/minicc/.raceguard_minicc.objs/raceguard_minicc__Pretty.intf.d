lib/minicc/pretty.mli: Ast
