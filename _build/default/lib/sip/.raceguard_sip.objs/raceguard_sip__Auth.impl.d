lib/sip/auth.ml: Raceguard_cxxsim Raceguard_util Raceguard_vm Registrar
