(** Digest-style authentication for REGISTER (RFC 2617 reduced to its
    concurrency-relevant skeleton): a shared mutex-guarded nonce cache
    whose entries are single-use objects deleted after unlinking —
    one more destructor-FP site family.  Enabled by
    [Proxy.config.require_auth]. *)

val token_class : Raceguard_cxxsim.Object_model.class_desc
val nonce_class : Raceguard_cxxsim.Object_model.class_desc

type t

val create : alloc:Raceguard_cxxsim.Allocator.t -> annotate:bool -> t

val response_for : nonce:int -> int
(** The client-side digest computation for a challenge nonce. *)

val challenge : t -> user:string -> int
(** Issue (and store) a nonce for [user], replacing any previous one. *)

val verify : t -> user:string -> response:int -> bool
(** Consume the user's nonce and check the digest; false for unknown
    users, consumed nonces, or wrong responses. *)
