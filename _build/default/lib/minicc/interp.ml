(** Tree-walking interpreter: MiniC++ executes on the simulated VM.

    Compilation is modelled directly: objects live in VM memory with a
    vptr in slot 0, every field access is a VM read/write attributed to
    the source position that performed it, destructor chains write the
    vptr at each level (most-derived first) before the memory is freed,
    and the [ca_deletor_single] wrapper inserted by {!Annotate} issues
    the [VALGRIND_HG_DESTRUCT] client request.  Race reports therefore
    carry MiniC++ file/line stacks, exactly like Helgrind over
    debug-built C++. *)

open Ast
module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api

exception Runtime_error of string * Token.pos

let fail pos fmt = Fmt.kstr (fun m -> raise (Runtime_error (m, pos))) fmt

type value = Vint of int | Vstr of string

let as_int pos = function
  | Vint n -> n
  | Vstr s -> fail pos "expected an integer, got string %S" s

let as_str pos = function
  | Vstr s -> s
  | Vint n -> fail pos "expected a string, got integer %d" n

type t = {
  program : program;
  class_list : class_decl array;  (** vtable id = index + 1 *)
  mutable output : string list;  (** host-side stdout, reverse order *)
}

let create program =
  { program; class_list = Array.of_list (classes program); output = [] }

let output t = List.rev t.output

let vtable_id t name =
  let rec go i =
    if i >= Array.length t.class_list then invalid_arg ("unknown class " ^ name)
    else if t.class_list.(i).cls_name = name then i + 1
    else go (i + 1)
  in
  go 0

let class_of_vtable t id =
  if id < 1 || id > Array.length t.class_list then None else Some t.class_list.(id - 1)

let rec chain t c =
  match c.cls_parent with
  | None -> [ c ]
  | Some p -> (
      match find_class t.program p with
      | Some parent -> chain t parent @ [ c ]
      | None -> [ c ])

let all_fields t c = List.concat_map (fun c -> c.cls_fields) (chain t c)
let obj_size t c = 1 + List.length (all_fields t c)

let field_offset t c f pos =
  let rec go i = function
    | [] -> fail pos "class %s has no field %s" c.cls_name f
    | x :: rest -> if x = f then i else go (i + 1) rest
  in
  go 1 (all_fields t c)

(* resolve a method starting from the dynamic class, walking towards
   the root — virtual dispatch *)
let resolve_method t c m pos =
  let rec go = function
    | [] -> fail pos "class %s has no method %s" c.cls_name m
    | cls :: rest -> (
        match List.find_opt (fun f -> f.fn_name = m) cls.cls_methods with
        | Some f -> f
        | None -> go rest)
  in
  go (List.rev (chain t c))

let loc_of ~func (pos : Token.pos) = Loc.v pos.file func pos.line

(* dynamic class of a live object: read its vptr *)
let dynamic_class t ~func addr pos =
  let vid = Api.read ~loc:(loc_of ~func pos) addr in
  match class_of_vtable t vid with
  | Some c -> c
  | None -> fail pos "value %d is not a live object (bad vptr %d)" addr vid

exception Return_of of value

type frame = {
  vars : (string, value) Hashtbl.t;
  this : int option;
  func : string;  (** for Loc attribution *)
}

let lookup fr name pos =
  match Hashtbl.find_opt fr.vars name with
  | Some v -> v
  | None -> fail pos "undefined variable %s" name

let rec eval t fr (e : expr) : value =
  let loc pos = loc_of ~func:fr.func pos in
  match e.e with
  | Int n -> Vint n
  | Str s -> Vstr s
  | Null -> Vint 0
  | Var name -> lookup fr name e.epos
  | This -> (
      match fr.this with
      | Some addr -> Vint addr
      | None -> fail e.epos "'this' outside of a method")
  | Field (o, f) ->
      let addr = as_int e.epos (eval t fr o) in
      if addr = 0 then fail e.epos "null dereference reading field %s" f;
      let c = dynamic_class t ~func:fr.func addr e.epos in
      Vint (Api.read ~loc:(loc e.epos) (addr + field_offset t c f e.epos))
  | Binop (op, a, b) -> eval_binop t fr op a b e.epos
  | Unop (Not, a) -> Vint (if as_int e.epos (eval t fr a) = 0 then 1 else 0)
  | Unop (Neg, a) -> Vint (-as_int e.epos (eval t fr a))
  | Call (name, args) -> eval_call t fr name args e.epos
  | Method_call (o, m, args) ->
      let addr = as_int e.epos (eval t fr o) in
      if addr = 0 then fail e.epos "null dereference calling method %s" m;
      let c = dynamic_class t ~func:fr.func addr e.epos in
      let f = resolve_method t c m e.epos in
      let vargs = List.map (eval t fr) args in
      call_function t ~name:(c.cls_name ^ "::" ^ m) ~this:(Some addr) f vargs e.epos
  | New cls_name -> (
      match find_class t.program cls_name with
      | None -> fail e.epos "unknown class %s" cls_name
      | Some c ->
          let addr = Api.alloc ~loc:(loc e.epos) (obj_size t c) in
          (* each constructor level installs its own vtable pointer *)
          List.iter
            (fun level ->
              Api.write
                ~loc:(loc_of ~func:(level.cls_name ^ "::" ^ level.cls_name) e.epos)
                addr (vtable_id t level.cls_name))
            (chain t c);
          Vint addr)
  | Spawn (fname, args) -> (
      match find_function t.program fname with
      | None -> fail e.epos "spawn of unknown function %s" fname
      | Some f ->
          let vargs = List.map (eval t fr) args in
          let body () =
            ignore (call_function t ~name:fname ~this:None f vargs e.epos)
          in
          Vint (Api.spawn ~loc:(loc e.epos) ~name:fname body))
  | Deletor inner ->
      (* Figure 4: announce the destruction, then hand the pointer on *)
      let addr = as_int e.epos (eval t fr inner) in
      if addr <> 0 then begin
        let c = dynamic_class t ~func:"ca_deletor_single" addr e.epos in
        Api.hg_destruct ~addr ~len:(obj_size t c)
      end;
      Vint addr

and eval_binop t fr op a b pos =
  match op with
  | And -> if as_int pos (eval t fr a) = 0 then Vint 0 else eval t fr b
  | Or -> (
      match as_int pos (eval t fr a) with 0 -> eval t fr b | v -> Vint v)
  | _ ->
      let va = as_int pos (eval t fr a) and vb = as_int pos (eval t fr b) in
      let bool b = if b then 1 else 0 in
      Vint
        (match op with
        | Add -> va + vb
        | Sub -> va - vb
        | Mul -> va * vb
        | Div -> if vb = 0 then fail pos "division by zero" else va / vb
        | Mod -> if vb = 0 then fail pos "modulo by zero" else va mod vb
        | Eq -> bool (va = vb)
        | Neq -> bool (va <> vb)
        | Lt -> bool (va < vb)
        | Le -> bool (va <= vb)
        | Gt -> bool (va > vb)
        | Ge -> bool (va >= vb)
        | And | Or -> assert false)

and eval_call t fr name args pos =
  let loc = loc_of ~func:fr.func pos in
  let vargs () = List.map (eval t fr) args in
  let int1 () = match vargs () with [ v ] -> as_int pos v | _ -> fail pos "arity" in
  let int2 () =
    match vargs () with
    | [ a; b ] -> (as_int pos a, as_int pos b)
    | _ -> fail pos "arity"
  in
  match name with
  | "mutex" ->
      let n = match vargs () with [ v ] -> as_str pos v | _ -> fail pos "arity" in
      Vint (Api.Mutex.create ~loc n)
  | "mutex_lock" ->
      Api.Mutex.lock ~loc (int1 ());
      Vint 0
  | "mutex_unlock" ->
      Api.Mutex.unlock ~loc (int1 ());
      Vint 0
  | "rwlock" ->
      let n = match vargs () with [ v ] -> as_str pos v | _ -> fail pos "arity" in
      Vint (Api.Rwlock.create ~loc n)
  | "rdlock" ->
      Api.Rwlock.rdlock ~loc (int1 ());
      Vint 0
  | "wrlock" ->
      Api.Rwlock.wrlock ~loc (int1 ());
      Vint 0
  | "rw_unlock" ->
      Api.Rwlock.unlock ~loc (int1 ());
      Vint 0
  | "cond" ->
      let n = match vargs () with [ v ] -> as_str pos v | _ -> fail pos "arity" in
      Vint (Api.Cond.create ~loc n)
  | "cond_wait" ->
      let cv, m = int2 () in
      Api.Cond.wait ~loc cv m;
      Vint 0
  | "cond_signal" ->
      Api.Cond.signal ~loc (int1 ());
      Vint 0
  | "cond_broadcast" ->
      Api.Cond.broadcast ~loc (int1 ());
      Vint 0
  | "sem" ->
      let n, init =
        match vargs () with
        | [ a; b ] -> (as_str pos a, as_int pos b)
        | _ -> fail pos "arity"
      in
      Vint (Api.Sem.create ~loc ~init n)
  | "sem_wait" ->
      Api.Sem.wait ~loc (int1 ());
      Vint 0
  | "sem_post" ->
      Api.Sem.post ~loc (int1 ());
      Vint 0
  | "benign_race" ->
      let addr, len = int2 () in
      Api.benign_race ~addr ~len;
      Vint 0
  | "hb_before" ->
      Api.annotate_happens_before ~tag:(int1 ());
      Vint 0
  | "hb_after" ->
      Api.annotate_happens_after ~tag:(int1 ());
      Vint 0
  | "join" ->
      Api.join ~loc (int1 ());
      Vint 0
  | "yield" ->
      Api.yield ();
      Vint 0
  | "sleep" ->
      Api.sleep (int1 ());
      Vint 0
  | "now" -> Vint (Api.now ())
  | "self" -> Vint (Api.self ())
  | "random" -> Vint (Api.random_int (max 1 (int1 ())))
  | "print" ->
      let v = int1 () in
      t.output <- string_of_int v :: t.output;
      Vint 0
  | "print_str" ->
      let s = match vargs () with [ v ] -> as_str pos v | _ -> fail pos "arity" in
      t.output <- s :: t.output;
      Vint 0
  | "alloc" -> Vint (Api.alloc ~loc (max 1 (int1 ())))
  | "free" ->
      Api.free ~loc (int1 ());
      Vint 0
  | "load" -> Vint (Api.read ~loc (int1 ()))
  | "store" ->
      let a, v = int2 () in
      Api.write ~loc a v;
      Vint 0
  | "atomic_inc" -> Vint (Api.atomic_incr ~loc (int1 ()))
  | "atomic_dec" -> Vint (Api.atomic_decr ~loc (int1 ()))
  | "hg_destruct" ->
      let a, len = int2 () in
      Api.hg_destruct ~addr:a ~len;
      Vint 0
  | "ca_deletor_single" -> (
      (* callable form of the deletor helper (the annotator normally
         produces the Deletor node, but handwritten code may call it) *)
      match args with
      | [ inner ] -> eval t fr { e = Deletor inner; epos = pos }
      | _ -> fail pos "arity")
  | _ -> (
      match find_function t.program name with
      | Some f -> call_function t ~name ~this:None f (vargs ()) pos
      | None -> fail pos "unknown function %s" name)

and call_function t ~name ~this f vargs pos =
  if List.length f.fn_params <> List.length vargs then
    fail pos "%s expects %d argument(s), got %d" name (List.length f.fn_params)
      (List.length vargs);
  let fr = { vars = Hashtbl.create 8; this; func = name } in
  List.iter2 (fun p v -> Hashtbl.replace fr.vars p v) f.fn_params vargs;
  Api.with_frame (loc_of ~func:name f.fn_pos) @@ fun () ->
  try
    exec_stmts t fr f.fn_body;
    Vint 0
  with Return_of v -> v

and exec_stmts t fr body = List.iter (exec_stmt t fr) body

and exec_stmt t fr (s : stmt) =
  let loc pos = loc_of ~func:fr.func pos in
  match s.s with
  | Var_decl (name, e) -> Hashtbl.replace fr.vars name (eval t fr e)
  | Assign (Lvar name, e) ->
      if not (Hashtbl.mem fr.vars name) then fail s.spos "assignment to undefined variable %s" name;
      Hashtbl.replace fr.vars name (eval t fr e)
  | Assign (Lfield (o, f, fpos), e) ->
      let addr = as_int fpos (eval t fr o) in
      if addr = 0 then fail fpos "null dereference writing field %s" f;
      let c = dynamic_class t ~func:fr.func addr fpos in
      let v = as_int s.spos (eval t fr e) in
      Api.write ~loc:(loc fpos) (addr + field_offset t c f fpos) v
  | Expr e -> ignore (eval t fr e)
  | If (cond, a, b) ->
      if as_int s.spos (eval t fr cond) <> 0 then exec_stmts t fr a else exec_stmts t fr b
  | While (cond, body) ->
      while as_int s.spos (eval t fr cond) <> 0 do
        exec_stmts t fr body
      done
  | Return None -> raise (Return_of (Vint 0))
  | Return (Some e) -> raise (Return_of (eval t fr e))
  | Delete e ->
      let addr = as_int s.spos (eval t fr e) in
      if addr <> 0 then begin
        let c = dynamic_class t ~func:fr.func addr s.spos in
        (* destructor chain: most-derived first, each level writes its
           own vtable pointer then runs its body *)
        List.iter
          (fun level ->
            let dtor_name = level.cls_name ^ "::~" ^ level.cls_name in
            Api.write ~loc:(loc_of ~func:dtor_name s.spos) addr (vtable_id t level.cls_name);
            match level.cls_dtor with
            | None -> ()
            | Some body ->
                let dfr = { vars = Hashtbl.create 4; this = Some addr; func = dtor_name } in
                (try exec_stmts t dfr body with Return_of _ -> ()))
          (List.rev (chain t c));
        Api.free ~loc:(loc s.spos) addr
      end
  | Lock (m, body) ->
      let mid = as_int s.spos (eval t fr m) in
      Api.Mutex.with_lock ~loc:(loc s.spos) mid (fun () -> exec_stmts t fr body)
  | Block body -> exec_stmts t fr body

(** Execute the program's [main] (call from inside a VM thread). *)
let run_main t =
  match find_function t.program "main" with
  | None -> invalid_arg "program has no main"
  | Some f -> ignore (call_function t ~name:"main" ~this:None f [] f.fn_pos)

(* ------------------------------------------------------------------ *)
(* Build pipeline helpers                                              *)
(* ------------------------------------------------------------------ *)

(** The full Figure-3 pipeline on a source string: preprocess, parse,
    check, optionally annotate.  Returns the executable program, the
    (possibly annotated) pretty-printed source, and the number of
    deletes annotated. *)
let compile ?(annotate = true) ?preprocessor ~file src =
  let pp = match preprocessor with Some p -> p | None -> Preprocess.with_builtins () in
  let ast = Preprocess.parse pp ~file src in
  Check.check ast;
  let ast, n_annotated = if annotate then Annotate.annotate ast else (ast, 0) in
  let header =
    if annotate then "// instrumented build\n#include \"valgrind/helgrind.h\"" else ""
  in
  (create ast, Pretty.program ~header_comment:header ast, n_annotated)
