(** Asynchronous logging: workers enqueue [LogRecord] objects, a
    dedicated logger thread formats and deletes them.

    The handoff goes through a message queue — synchronisation the
    lock-set algorithm cannot see (§4.2.3) — so the records'
    destructor chains in the logger thread are reported without the DR
    annotation.  The logger also calls the non-thread-safe
    {!Timeutil.ctime} (bug B5) and participates in the shutdown-order
    bug B3 via its final statistics bump. *)

module Loc = Raceguard_util.Loc

val record_class : Raceguard_cxxsim.Object_model.class_desc
val log_record_class : Raceguard_cxxsim.Object_model.class_desc

type t

val create : stats:Stats.t -> time:Timeutil.t -> annotate:bool -> t
val start : t -> unit

val log : t -> loc:Loc.t -> level:int -> string -> unit
(** Called by worker threads: allocate a record and enqueue it. *)

val stop : t -> unit
(** Bus-locked store to the stop flag. *)

val join : t -> unit

val destroy : t -> unit
(** Drain any records still enqueued into the sink.  Guarantees no
    buffered line is silently dropped even under the B3 shutdown
    ordering (Stats destroyed before the logger stops) — the B3 bug
    itself stays injected; this only makes the loss impossible. *)

val lines : t -> string list
(** The host-side "log file", in order. *)
