(** The Helgrind-style lock-set race detector: the Eraser algorithm
    with the Figure-1 state machine, VisualThreads thread segments
    (Figure 2), and the paper's two improvements — the corrected
    hardware-bus-lock model (HWLC) and destructor annotations (DR) —
    plus the §5 happens-before-annotation extension.

    Attach via {!tool} to a {!Raceguard_vm.Engine} and read the
    reports afterwards.  Several instances with different
    configurations can watch the same run. *)

(** How the x86 [LOCK] prefix is modelled in lock-sets. *)
type bus_model =
  | Locked_mutex
      (** the original Helgrind behaviour: a virtual mutex held only
          around [LOCK]-prefixed instructions — plain reads of
          atomically-updated words empty the candidate set (the
          Figure 8 false positives) *)
  | Rw_lock
      (** the paper's correction: every read implicitly holds the bus
          lock in read mode, [LOCK]-prefixed writes hold it in write
          mode *)

type config = {
  bus_model : bus_model;
  destructor_annotations : bool;
      (** honour [VALGRIND_HG_DESTRUCT] client requests (the DR
          improvement): the announced range becomes exclusively owned
          by the deleting thread's segment *)
  thread_segments : bool;  (** the VisualThreads refinement (Figure 2) *)
  track_rwlocks : bool;
      (** understand POSIX rw-lock events; the original Helgrind did
          not ("an extension for read-write locks ... is not
          implemented in Helgrind", §2.3.2) *)
  eraser_states : bool;
      (** the Figure-1 state machine; [false] runs the naive textbook
          Eraser (candidate set refined from the very first access) *)
  report_reads : bool;
      (** also report reads with an empty candidate set in the
          Shared-Modified state *)
  hb_annotations : bool;
      (** honour [ANNOTATE_HAPPENS_BEFORE]/[_AFTER] client requests —
          the §5 future-work extension for higher-level
          synchronisation *)
  fast_path : bool;
      (** short-circuit the Figure-1 step when the word's last-access
          stamp (thread, segment, interned lock-sets) shows the
          transition is a no-op that cannot warn; on by default and
          guaranteed not to alter reports *)
  provenance : bool;
      (** record each word's shadow-state transition history and attach
          it to warnings as {!Report.provenance}; recorded only on
          genuine state changes, so the history is byte-identical with
          [fast_path] on or off.  Off by default (costs memory and
          rendering on state changes). *)
}

val original : config
(** The unmodified Helgrind of the paper's first experiment column. *)

val hwlc : config
(** [original] + the corrected bus-lock model + rw-lock tracking. *)

val hwlc_dr : config
(** [hwlc] + destructor annotations: the paper's final configuration. *)

val hwlc_dr_hb : config
(** [hwlc_dr] + the §5 annotation extension. *)

val pure_eraser : config
(** Ablation: Eraser without the state machine. *)

val pp_config_name : Format.formatter -> config -> unit

val config_to_json : config -> Raceguard_obs.Json.t
(** Every knob of the configuration, for machine-readable outputs
    (bench row config echo, explain JSON). *)

(** {1 Running} *)

type t

val create : ?suppressions:Suppression.t list -> config -> t

val tool : t -> Raceguard_vm.Tool.t
(** The VM tool to attach with {!Raceguard_vm.Engine.add_tool}. *)

val on_event : t -> Raceguard_vm.Tool.ctx -> Raceguard_vm.Event.t -> unit
(** Feed one event directly — for composition ({!Hybrid}) and offline
    replay; {!tool} is this wrapped up. *)

val set_warning_filter : t -> (tid:int -> addr:int -> kind:Report.kind -> bool) -> unit
(** Install a gate consulted before each warning is recorded; used by
    {!Hybrid} to require happens-before concurrence. *)

val set_tracer : t -> Raceguard_obs.Trace.t -> unit
(** Offer detector decisions (state transitions, warnings, fast-path
    skips) to a sampling ring tracer; off unless installed. *)

val set_static_hints : t -> (string * int) list -> unit
(** Pre-mark allocation sites (by the (file, line) of their [E_alloc]
    loc) as statically proven thread-local — e.g. the [hint_locs] of
    the MiniC++ static analysis.  Words allocated there take the
    Exclusive fast path even across segment advances, so the hit rate
    rises; reports are unchanged provided the hints are truthful (a
    word only ever touched by one thread between allocations). *)

(** {1 Results} *)

val reports : t -> Report.t list
(** Every occurrence, chronologically. *)

val locations : t -> (Report.t * int) list
(** Distinct locations (deduplicated by call-stack signature — the
    Figure 6 metric) with occurrence counts. *)

val location_count : t -> int
val collector : t -> Report.collector
val accesses_checked : t -> int

val fast_path_hits : t -> int
(** Accesses answered by the shadow fast path (0 when disabled). *)
