#!/usr/bin/env python3
"""Regenerate ci/chaos_quick_digests.json from a chaos report.

Usage:
    dune exec bin/experiments.exe -- chaos --quick --json --out chaos.json
    python3 ci/make_chaos_digests.py chaos.json > ci/chaos_quick_digests.json

The output is the committed sequential digest pin: CI's par-smoke job
asserts that a --domains N run of the same quick matrix reproduces
every per-cell digest (and the matrix digest) byte-for-byte.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    x = json.load(open(sys.argv[1]))
    if x.get("schema") != "raceguard-chaos/1":
        print(f"unexpected schema {x.get('schema')!r}", file=sys.stderr)
        return 1
    pin = {
        "schema": "raceguard-chaos-digests/1",
        "note": "committed sequential (--domains 1) per-cell digests of the "
        "quick chaos matrix, seed 7; CI's par-smoke job asserts any "
        "--domains N run reproduces them byte-for-byte. Refresh with: "
        "dune exec bin/experiments.exe -- chaos --quick --json --out chaos.json "
        "and ci/make_chaos_digests.py chaos.json > ci/chaos_quick_digests.json",
        "seed": x["seed"],
        "matrix_digest": x["summary"]["matrix_digest"],
        "cells": [
            {
                "plan": c["plan"],
                "test": c["test"],
                "resilient": c["resilient"],
                "sig_digest": c["sig_digest"],
                "behavior_digest": c["behavior_digest"],
            }
            for c in x["cells"]
        ],
    }
    json.dump(pin, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
