bin/minicc.ml: Arg Cmd Cmdliner Fmt List Printexc Printf Raceguard_detector Raceguard_minicc Raceguard_vm Term
