lib/detector/hb_clocks.mli: Raceguard_vm Vector_clock
