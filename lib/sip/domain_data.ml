(** Per-domain configuration data — home of two injected real bugs.

    {b B2 (initialisation order, §4.1.1):} the reload thread is started
    {e before} the domain table is populated, so its first pass races
    with the main thread's unsynchronised initial population — "a
    thread is started before parts of the data structures it uses are
    initialized".

    {b B4 (returning a reference, §4.1.2, Figure 7):}
    [get_domain_data] takes the mutex, but returns the {e address} of
    the internal map — the OCaml transliteration of

    {[ map<string,DomainData*>& getDomainData() {
         MutexPtr mut(m_pMutex);  // Guard
         return m_DomainData;     // reference escapes the lock!
       } ]}

    Callers then walk the map with no lock held while the reload thread
    mutates it under the lock, so every caller-side read is a genuine
    data race that survives all detector improvements. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Obj_model = Raceguard_cxxsim.Object_model
module Refstring = Raceguard_cxxsim.Refstring
module Containers = Raceguard_cxxsim.Containers

let lc func line = Loc.v "domain_data.cpp" ("ServerModulesManagerImpl::" ^ func) line

let m_reload_oom =
  Raceguard_obs.Metrics.counter "sip.resilience.reload_alloc_recovered"

(* class ConfigObject { int version; }
   class DomainData : ConfigObject { RefString name; int max_calls; int features; } *)
let config_object_class =
  Obj_model.define ~name:"ConfigObject" ~fields:[ "version" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"domain_data.cpp" ~base_line:28 cls obj ~strings:[]
        ~ints:[ "version" ])
    ()

let domain_data_class =
  Obj_model.define ~parent:config_object_class ~name:"DomainData"
    ~fields:[ "name"; "max_calls"; "features" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"domain_data.cpp" ~base_line:36 cls obj ~strings:[ "name" ]
        ~ints:[ "max_calls"; "features" ])
    ()

type t = {
  mutex : Api.Mutex.t;
  map : Containers.Map.t;  (** hash(domain) -> DomainData address *)
  alloc : Raceguard_cxxsim.Allocator.t;
  mutable reload_thread : int;
  stop_flag : int;
  init_racy : bool;  (** B2 toggle: populate after starting the reloader *)
  recover_alloc_failure : bool;  (** survive injected allocation faults *)
  domains : string list;
}

let hash = Registrar.hash_string

let new_domain_data ~loc name gen =
  Obj_model.new_ ~loc domain_data_class ~init:(fun obj ->
      let cls = domain_data_class in
      Obj_model.set ~loc cls obj "version" gen;
      Obj_model.set ~loc cls obj "name" (Refstring.create ~loc name);
      Obj_model.set ~loc cls obj "max_calls" (100 + gen);
      Obj_model.set ~loc cls obj "features" (gen land 0xff))

let populate t gen =
  (* B2: initial population is unsynchronised — the author "knew" the
     map was still private when this code was written *)
  let loc = lc "populate" 58 in
  Api.with_frame loc @@ fun () ->
  List.iter
    (fun d -> Containers.Map.insert t.map (hash d) (new_domain_data ~loc d gen))
    t.domains

let reload t ~annotate gen =
  (* periodic reload: correctly locked replacement of every entry *)
  let loc = lc "reload" 66 in
  Api.with_frame loc @@ fun () ->
  let victims = ref [] in
  Api.Mutex.with_lock ~loc t.mutex (fun () ->
      List.iter
        (fun d ->
          let key = hash d in
          (match Containers.Map.find t.map key with
          | Some old when old <> 0 -> victims := old :: !victims
          | _ -> ());
          Containers.Map.insert t.map key (new_domain_data ~loc d gen))
        t.domains);
  List.iter
    (fun old -> Obj_model.delete_ ~loc:(lc "reload" 79) ~annotate domain_data_class old)
    !victims

let run_reloader t ~annotate () =
  Api.with_frame (lc "reloader" 83) @@ fun () ->
  (* initial sanity pass: touch every domain entry right at thread
     start — this is what races with the main thread's population when
     the thread is started too early (B2) *)
  Api.with_frame (lc "initialCheck" 84) (fun () ->
      Api.Mutex.with_lock ~loc:(lc "initialCheck" 84) t.mutex (fun () ->
          List.iter (fun d -> ignore (Containers.Map.find t.map (hash d))) t.domains));
  let gen = ref 1 in
  while Api.read ~loc:(lc "reloader" 85) t.stop_flag = 0 do
    Api.sleep 25;
    if Api.read ~loc:(lc "reloader" 87) t.stop_flag = 0 then begin
      incr gen;
      try reload t ~annotate !gen
      with Raceguard_faults.Injector.Out_of_memory when t.recover_alloc_failure ->
        (* injected allocation failure mid-reload: skip this generation
           instead of killing the reload thread *)
        Raceguard_obs.Metrics.incr m_reload_oom
    end
  done

(** Create the manager.  With [init_racy = true] (the shipped code) the
    reload thread starts {e before} [populate] runs — bug B2. *)
let create ~alloc ~annotate ~init_racy ?(recover_alloc_failure = false) ~domains () =
  let t =
    {
      mutex = Api.Mutex.create ~loc:(lc "ctor" 98) "domain_data.mutex";
      map = Containers.Map.create alloc;
      alloc;
      reload_thread = -1;
      stop_flag = Api.alloc ~loc:(lc "ctor" 101) 1;
      init_racy;
      recover_alloc_failure;
      domains;
    }
  in
  if init_racy then begin
    t.reload_thread <- Api.spawn ~loc:(lc "ctor" 106) ~name:"domain-reloader" (run_reloader t ~annotate);
    populate t 0
  end
  else begin
    populate t 0;
    t.reload_thread <- Api.spawn ~loc:(lc "ctor" 111) ~name:"domain-reloader" (run_reloader t ~annotate)
  end;
  t

(** Figure 7: returns the address of the internal map.  The lock is
    taken and released inside — protecting nothing. *)
let get_domain_data t =
  let loc = lc "getDomainData" 119 in
  Api.Mutex.lock ~loc t.mutex;
  let m = Containers.Map.address t.map in
  Api.Mutex.unlock ~loc t.mutex;
  m

(** What callers do with the escaped reference: look up a domain with
    no lock held — every node read races with [reload] (bug B4). *)
let unsafe_lookup t ~domain =
  Api.with_frame (lc "callerDeref" 131) @@ fun () ->
  let leaked = get_domain_data t in
  let view = Containers.Map.of_address t.alloc leaked in
  match Containers.Map.find view (hash domain) with
  | Some dd when dd <> 0 ->
      let loc = lc "callerDeref" 132 in
      Some (Obj_model.get ~loc domain_data_class dd "max_calls")
  | _ -> None

(** The correct API (for comparison / fixed builds). *)
let safe_lookup t ~domain =
  let loc = lc "safeLookup" 138 in
  Api.with_frame loc @@ fun () ->
  Api.Mutex.with_lock ~loc t.mutex (fun () ->
      match Containers.Map.find t.map (hash domain) with
      | Some dd when dd <> 0 -> Some (Obj_model.get ~loc domain_data_class dd "max_calls")
      | _ -> None)

let stop t = ignore (Api.atomic_rmw ~loc:(lc "stop" 144) t.stop_flag (fun _ -> 1))
let join t = if t.reload_thread >= 0 then Api.join ~loc:(lc "join" 145) t.reload_thread
