(* Tests for the systematic schedule explorer (Scripted policy + DFS
   over scheduling decisions). *)

module Vm = Raceguard_vm
module Engine = Vm.Engine
module Api = Vm.Api
module Det = Raceguard_detector
module Loc = Raceguard_util.Loc

let loc = Loc.v "x.c" "main" 1

let instantiate scenario ~policy =
  let vm = Engine.create ~config:{ Engine.default_config with policy } () in
  let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  Engine.add_tool vm (Det.Helgrind.tool h);
  let execute () =
    let outcome = Engine.run vm scenario in
    assert (outcome.failures = []);
    vm
  in
  let check _ = if Det.Helgrind.location_count h > 0 then Some () else None in
  (execute, check)

let test_scripted_policy_replays () =
  (* the same script yields the same trace; flipping the first decision
     changes it *)
  let trace script =
    let events = ref [] in
    let vm =
      Engine.create
        ~config:{ Engine.default_config with policy = Engine.Scripted script }
        ()
    in
    Engine.add_tool vm (Vm.Tool.of_fn "rec" (fun e -> events := Fmt.str "%a" Vm.Event.pp e :: !events));
    let _ =
      Engine.run vm (fun () ->
          let a = Api.alloc ~loc 1 in
          let w name v () = Api.write ~loc:(Loc.v "x.c" name 2) a v in
          let t1 = Api.spawn ~loc ~name:"a" (w "wa" 1) in
          let t2 = Api.spawn ~loc ~name:"b" (w "wb" 2) in
          Api.join ~loc t1;
          Api.join ~loc t2)
    in
    List.rev !events
  in
  Alcotest.(check (list string)) "same script, same trace" (trace [| 1; 0 |]) (trace [| 1; 0 |]);
  Alcotest.(check bool) "different script, different trace" true
    (trace [| 0 |] <> trace [| 1; 1 |])

let test_explore_finds_fneg_witness () =
  let result =
    Vm.Explore.search ~max_depth:24 ~max_runs:500
      (instantiate Raceguard.Scenarios.false_negative_schedule)
  in
  Alcotest.(check bool) "witness found" true (result.found <> None);
  Alcotest.(check bool) "few runs needed" true (result.runs <= 50);
  match result.witness_script with
  | None -> Alcotest.fail "no witness script"
  | Some script ->
      (* the script must reproduce the detection deterministically *)
      let execute, check =
        instantiate Raceguard.Scenarios.false_negative_schedule
          ~policy:(Engine.Scripted script)
      in
      let vm = execute () in
      ignore vm;
      Alcotest.(check bool) "witness script reproduces" true (check vm <> None)

let test_explore_exhausts_clean_program () =
  let clean () =
    let v = Api.alloc ~loc 1 in
    let m = Api.Mutex.create ~loc "m" in
    let w () = Api.Mutex.with_lock ~loc m (fun () -> Api.write ~loc v 1) in
    let t1 = Api.spawn ~loc ~name:"a" w in
    let t2 = Api.spawn ~loc ~name:"b" w in
    Api.join ~loc t1;
    Api.join ~loc t2
  in
  let result = Vm.Explore.search ~max_depth:4 ~max_runs:500 (instantiate clean) in
  Alcotest.(check bool) "no witness" true (result.found = None);
  Alcotest.(check bool) "tree exhausted" true result.exhausted;
  Alcotest.(check bool) "more than one schedule tried" true (result.runs > 1)

let test_explore_respects_run_cap () =
  let result =
    Vm.Explore.search ~max_depth:24 ~max_runs:7
      (instantiate Raceguard.Scenarios.handoff_per_request)
  in
  Alcotest.(check bool) "run cap respected" true (result.runs <= 7);
  Alcotest.(check bool) "handoff has no witness" true (result.found = None)

let suite =
  ( "explore",
    [
      Alcotest.test_case "scripted replay" `Quick test_scripted_policy_replays;
      Alcotest.test_case "finds the §4.3 witness" `Quick test_explore_finds_fneg_witness;
      Alcotest.test_case "exhausts clean trees" `Quick test_explore_exhausts_clean_program;
      Alcotest.test_case "run cap" `Quick test_explore_respects_run_cap;
    ] )
