(* FastTrack (epoch-based happens-before) — equivalence with DJIT and
   the epoch-state transitions.

   The central law: FastTrack is a representation change, not an
   algorithm change.  On any schedule it must report exactly DJIT's
   races, rendered byte-identically (same previous access in the
   detail line, same order, same occurrence counts) — pinned here on
   random programs across first_only × demotion-cadence configurations
   and on the eight SIP test cases, and pinned live-vs-replay for the
   whole registry in test_trace.ml. *)

module Vm = Raceguard_vm
module Engine = Vm.Engine
module Api = Vm.Api
module Det = Raceguard_detector
module Sip = Raceguard_sip
module R = Raceguard
module Loc = Raceguard_util.Loc

let loc = Loc.v "ft.c" "main" 1

let run_djit ?(seed = 1) ?(config = Det.Djit.default_config) program =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let d = Det.Djit.create ~config () in
  Engine.add_tool vm (Det.Djit.tool d);
  let _ = Engine.run vm program in
  d

let run_ft ?(seed = 1) ?(config = Det.Fasttrack.default_config) program =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let f = Det.Fasttrack.create ~config () in
  Engine.add_tool vm (Det.Fasttrack.tool f);
  let _ = Engine.run vm program in
  f

let djit_digests d =
  ( Det.Offline.digest_signatures (Det.Djit.locations d),
    Det.Offline.digest_reports (Det.Djit.reports d) )

let ft_digests f =
  ( Det.Offline.digest_signatures (Det.Fasttrack.locations f),
    Det.Offline.digest_reports (Det.Fasttrack.reports f) )

(* --- the equivalence law on random schedules ----------------------------- *)

let ft_config ~first_only ~demote_check =
  { Det.Fasttrack.default_config with first_only; demote_check }

let qc_equivalence =
  QCheck2.Test.make ~name:"fasttrack ≡ djit (digests, random schedules)" ~count:50
    Test_properties.gen_program (fun p ->
      List.for_all
        (fun seed ->
          List.for_all
            (fun discipline ->
              let program = Test_properties.build p ~discipline in
              List.for_all
                (fun first_only ->
                  let dj =
                    djit_digests
                      (run_djit ~seed
                         ~config:{ Det.Djit.default_config with first_only }
                         program)
                  in
                  (* demote_check 0 = classic FastTrack (never demote),
                     1 = demote at every opportunity, 32 = the default
                     cadence — all three must be invisible in the
                     reports *)
                  List.for_all
                    (fun demote_check ->
                      dj
                      = ft_digests
                          (run_ft ~seed ~config:(ft_config ~first_only ~demote_check) program))
                    [ 0; 1; 32 ])
                [ true; false ])
            [ true; false ])
        [ 1; 7 ])

(* --- the hybrid gate: VC and epoch engines agree ------------------------- *)

let run_hybrid ?(seed = 1) ~config program =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let h = Det.Hybrid.create ~config () in
  Engine.add_tool vm (Det.Hybrid.tool h);
  let _ = Engine.run vm program in
  ( Det.Offline.digest_signatures (Det.Hybrid.locations h),
    Det.Offline.digest_reports (Det.Hybrid.reports h) )

let qc_hybrid_gate_equivalence =
  QCheck2.Test.make ~name:"hybrid VC gate ≡ epoch gate (random schedules)" ~count:40
    Test_properties.gen_program (fun p ->
      List.for_all
        (fun seed ->
          let program = Test_properties.build p ~discipline:false in
          run_hybrid ~seed ~config:Det.Hybrid.default_config program
          = run_hybrid ~seed ~config:Det.Hybrid.epoch_config program)
        [ 1; 7 ])

(* --- epoch-state transitions, one by one --------------------------------- *)

(* read-same-epoch: repeated reads by one thread are O(1) skips *)
let test_same_epoch_reads () =
  let f =
    run_ft (fun () ->
        let a = Api.alloc ~loc 1 in
        Api.write ~loc a 0;
        for _ = 1 to 50 do
          ignore (Api.read ~loc a)
        done)
  in
  Alcotest.(check int) "silent" 0 (Det.Fasttrack.location_count f);
  Alcotest.(check int) "never promoted" 0 (Det.Fasttrack.read_promotions f);
  Alcotest.(check bool) "reads decided on the epoch fast path" true
    (Det.Fasttrack.epoch_hits f >= 50)

(* read-exclusive replacement: totally ordered reads by different
   threads stay a single epoch *)
let test_ordered_reads_replace () =
  let f =
    run_ft (fun () ->
        let a = Api.alloc ~loc 1 in
        Api.write ~loc a 1;
        let t = Api.spawn ~loc ~name:"r1" (fun () -> ignore (Api.read ~loc a)) in
        Api.join ~loc t;
        ignore (Api.read ~loc a);
        let t2 = Api.spawn ~loc ~name:"r2" (fun () -> ignore (Api.read ~loc a)) in
        Api.join ~loc t2)
  in
  Alcotest.(check int) "silent" 0 (Det.Fasttrack.location_count f);
  Alcotest.(check int) "ordered reads never promote" 0 (Det.Fasttrack.read_promotions f)

(* read-shared promotion: genuinely concurrent readers *)
let test_concurrent_reads_promote () =
  let f =
    run_ft (fun () ->
        let a = Api.alloc ~loc 1 in
        Api.write ~loc a 1;
        let reader () = ignore (Api.read ~loc a) in
        let t1 = Api.spawn ~loc ~name:"r1" reader in
        let t2 = Api.spawn ~loc ~name:"r2" reader in
        Api.join ~loc t1;
        Api.join ~loc t2)
  in
  Alcotest.(check int) "exactly one promotion" 1 (Det.Fasttrack.read_promotions f);
  Alcotest.(check int) "concurrent reads are not a race" 0 (Det.Fasttrack.location_count f)

(* write-exclusive fast path: a tight single-thread update loop *)
let test_same_epoch_writes () =
  let f =
    run_ft (fun () ->
        let a = Api.alloc ~loc 1 in
        for i = 1 to 50 do
          Api.write ~loc a i
        done)
  in
  Alcotest.(check int) "silent" 0 (Det.Fasttrack.location_count f);
  Alcotest.(check bool) "writes decided on the epoch fast path" true
    (Det.Fasttrack.epoch_hits f >= 49)

(* a write racing promoted (read-shared) state must render exactly
   DJIT's report — same previous read picked out of the vector *)
let shared_write_race () =
  let a = Api.alloc ~loc 1 in
  Api.write ~loc a 1;
  let reader k () = ignore (Api.read ~loc:(Loc.v "ft.c" "reader" (10 + k)) a) in
  let t1 = Api.spawn ~loc ~name:"r1" (reader 1) in
  let t2 = Api.spawn ~loc ~name:"r2" (reader 2) in
  let w = Api.spawn ~loc ~name:"w" (fun () -> Api.write ~loc:(Loc.v "ft.c" "w" 20) a 2) in
  Api.join ~loc t1;
  Api.join ~loc t2;
  Api.join ~loc w

let test_shared_write_race_matches_djit () =
  List.iter
    (fun seed ->
      let dj = djit_digests (run_djit ~seed shared_write_race) in
      let f = run_ft ~seed shared_write_race in
      Alcotest.(check (pair string string))
        (Fmt.str "seed %d: digests match djit" seed)
        dj (ft_digests f))
    [ 1; 2; 3; 7; 42 ]

(* demotion and re-promotion: the churn scenario promotes every word
   each round and the post-join sweeps demote them again *)
let test_demotion_and_repromotion () =
  let words = 4 and rounds = 2 in
  let program () = R.Scenarios.read_shared_churn ~threads:3 ~rounds ~iters:30 ~words () in
  let f = run_ft ~config:(ft_config ~first_only:true ~demote_check:1) program in
  Alcotest.(check int) "race-free" 0 (Det.Fasttrack.location_count f);
  Alcotest.(check bool)
    (Fmt.str "every word demoted at least once (%d)" (Det.Fasttrack.read_demotions f))
    true
    (Det.Fasttrack.read_demotions f >= words);
  Alcotest.(check bool)
    (Fmt.str "demoted words re-promote next round (%d promotions)"
       (Det.Fasttrack.read_promotions f))
    true
    (Det.Fasttrack.read_promotions f >= rounds * words);
  (* the default cadence still demotes on this workload *)
  let f32 = run_ft program in
  Alcotest.(check bool) "default cadence demotes too" true
    (Det.Fasttrack.read_demotions f32 >= 1)

(* --- the unordered_now dead-cell fix ------------------------------------- *)

(* Once first_only retires a cell its shadow state goes stale; the
   composition probe must answer false instead of gating on it.  Both
   detectors run on the same stream; the probing tid never synchronised
   with either writer, so the stale last-write would look unordered. *)
let test_unordered_now_dead_cell () =
  let vm = Engine.create ~config:{ Engine.default_config with seed = 1 } () in
  let d = Det.Djit.create () in
  let f = Det.Fasttrack.create () in
  Engine.add_tool vm (Det.Djit.tool d);
  Engine.add_tool vm (Det.Fasttrack.tool f);
  let addr = ref 0 in
  let _ =
    Engine.run vm (fun () ->
        let a = Api.alloc ~loc 1 in
        addr := a;
        let t = Api.spawn ~loc ~name:"w" (fun () -> Api.write ~loc a 1) in
        Api.write ~loc a 2;
        Api.join ~loc t)
  in
  Alcotest.(check int) "djit reported and retired the cell" 1 (Det.Djit.location_count d);
  Alcotest.(check int) "fasttrack agrees" 1 (Det.Fasttrack.location_count f);
  Alcotest.(check bool) "djit: dead cell answers false" false
    (Det.Djit.unordered_now d ~tid:99 ~addr:!addr ~write:true);
  Alcotest.(check bool) "fasttrack: dead cell answers false" false
    (Det.Fasttrack.unordered_now f ~tid:99 ~addr:!addr ~write:true)

(* --- Vector_clock.pp normalization --------------------------------------- *)

(* pp must render the logical clock: two pointwise-equal clocks with
   different backing-array growth histories print identically *)
let qc_vc_pp_normalized =
  QCheck2.Test.make ~name:"Vc.pp invariant under growth history" ~count:200
    QCheck2.Gen.(pair (small_list (pair (int_bound 20) (int_bound 100))) (int_bound 40))
    (fun (assignments, extra) ->
      let a = Det.Vector_clock.create () in
      let b = Det.Vector_clock.create () in
      List.iter
        (fun (tid, v) ->
          Det.Vector_clock.set a tid v;
          Det.Vector_clock.set b tid v)
        assignments;
      (* grow b's backing array far past a's, with a zero entry *)
      Det.Vector_clock.set b (41 + extra) 1;
      Det.Vector_clock.set b (41 + extra) 0;
      Det.Vector_clock.equal a b
      && String.equal (Fmt.str "%a" Det.Vector_clock.pp a) (Fmt.str "%a" Det.Vector_clock.pp b))

(* --- alloc recycling ------------------------------------------------------ *)

(* E_alloc must fully reset recycled shadow state in both detectors —
   allocation-heavy workloads keep identical reports *)
let test_alloc_recycling_matches_djit () =
  let program () =
    let racer a =
      let t = Api.spawn ~loc ~name:"w" (fun () -> Api.write ~loc a 1) in
      Api.write ~loc a 2;
      Api.join ~loc t
    in
    (* allocate/free in a loop: the VM recycles addresses, so stale
       shadow (including dead cells) would leak across iterations *)
    for _ = 1 to 8 do
      let a = Api.alloc ~loc 16 in
      racer a;
      Api.free ~loc a
    done
  in
  List.iter
    (fun seed ->
      let dj = djit_digests (run_djit ~seed program) in
      let ft = ft_digests (run_ft ~seed program) in
      Alcotest.(check (pair string string))
        (Fmt.str "seed %d: digests match djit" seed)
        dj ft)
    [ 1; 7; 42 ]

(* --- live SIP pins: fasttrack ≡ djit on one shared event stream ----------- *)

let test_sip_equivalence () =
  List.iter
    (fun (tc : Sip.Workload.test_case) ->
      List.iter
        (fun seed ->
          let cfg =
            {
              R.Runner.default with
              seed;
              helgrind_configs = [];
              run_djit = true;
              run_fasttrack = true;
            }
          in
          let res = R.Runner.run_test_case cfg tc in
          let d = Option.get res.djit and f = Option.get res.fasttrack in
          Alcotest.(check string)
            (Fmt.str "%s seed %d: signature digest" tc.tc_name seed)
            (Det.Offline.digest_signatures (Det.Djit.locations d))
            (Det.Offline.digest_signatures (Det.Fasttrack.locations f));
          Alcotest.(check string)
            (Fmt.str "%s seed %d: report digest" tc.tc_name seed)
            (Det.Offline.digest_reports (Det.Djit.reports d))
            (Det.Offline.digest_reports (Det.Fasttrack.reports f)))
        [ 7; 42 ])
    Sip.Workload.all_test_cases

let suite =
  ( "fasttrack",
    [
      QCheck_alcotest.to_alcotest qc_equivalence;
      QCheck_alcotest.to_alcotest qc_hybrid_gate_equivalence;
      QCheck_alcotest.to_alcotest qc_vc_pp_normalized;
      Alcotest.test_case "read-same-epoch fast path" `Quick test_same_epoch_reads;
      Alcotest.test_case "ordered reads replace (no promotion)" `Quick
        test_ordered_reads_replace;
      Alcotest.test_case "concurrent reads promote" `Quick test_concurrent_reads_promote;
      Alcotest.test_case "write-same-epoch fast path" `Quick test_same_epoch_writes;
      Alcotest.test_case "write racing read-shared renders DJIT's report" `Quick
        test_shared_write_race_matches_djit;
      Alcotest.test_case "adaptive demotion and re-promotion" `Quick
        test_demotion_and_repromotion;
      Alcotest.test_case "unordered_now: dead cells answer false" `Quick
        test_unordered_now_dead_cell;
      Alcotest.test_case "alloc recycling matches djit" `Quick
        test_alloc_recycling_matches_djit;
      Alcotest.test_case "fasttrack ≡ djit on T1-T8 (seeds 7/42, live)" `Slow
        test_sip_equivalence;
    ] )
