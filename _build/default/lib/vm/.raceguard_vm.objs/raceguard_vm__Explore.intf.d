lib/vm/explore.mli: Engine
