lib/cxxsim/refstring.mli: Raceguard_util
