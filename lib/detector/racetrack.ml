(** RaceTrack-style adaptive detection — the paper's citation [16]
    (Yu, Rodeheffer & Chen, "RaceTrack: efficient detection of data
    race conditions via adaptive tracking", SOSP 2005).

    Per memory location the detector keeps a {e threadset}: the set of
    (thread, clock) stamps of accesses not yet ordered-before the
    current access by the happens-before relation.  On each access the
    set is pruned with vector clocks; while it holds at most one thread
    the location is effectively exclusive and the candidate lock-set
    stays at ⊤, so initialisation, read-sharing {e and ownership
    transfer through any synchronisation} (including the queue handoffs
    of §4.2.3 — via lock edges and, configurably, cond/sem edges) are
    accepted without annotations.  Only while the threadset is
    genuinely concurrent does lock-set refinement and checking run.

    The trade-off mirrors the paper's §2.2 discussion: RaceTrack
    removes the lock-set algorithm's residual false positives at the
    price of the happens-before family's schedule dependence. *)

module Vm = Raceguard_vm
open Vm.Event

type config = {
  hb : Hb_clocks.config;
  bus_model : Helgrind.bus_model;  (** same semantics as in {!Helgrind} *)
  report_reads : bool;
}

let default_config =
  { hb = Hb_clocks.default_config; bus_model = Helgrind.Rw_lock; report_reads = true }

type cell = {
  mutable lockset : Lockset.t;
  mutable threadset : (int * int) list;  (** (tid, clock) stamps *)
}

type t = {
  config : config;
  clocks : Hb_clocks.t;
  mutable shadow : cell array;  (** indexed by word address *)
  mutable locks : Held_locks.t array;  (** indexed by tid *)
  lock_names : (int, string) Hashtbl.t;
  collector : Report.collector;
  mutable benign : (int * int) list;
}

let create ?(config = default_config) ?(suppressions = []) () =
  {
    config;
    clocks = Hb_clocks.create ~config:config.hb ();
    shadow = [||];
    locks = [||];
    lock_names = Hashtbl.create 64;
    collector = Report.collector ~suppressions ();
    benign = [];
  }

let reports t = Report.occurrences t.collector
let locations t = Report.locations t.collector
let location_count t = Report.location_count t.collector
let collector t = t.collector

let thread_locks t tid =
  let n = Array.length t.locks in
  if tid >= n then begin
    let a =
      Array.init
        (max 16 (max (2 * n) (tid + 1)))
        (fun i -> if i < n then Array.unsafe_get t.locks i else Held_locks.create ())
    in
    t.locks <- a
  end;
  Array.unsafe_get t.locks tid

let fresh_cell () = { lockset = Lockset.top; threadset = [] }

let cell t addr =
  let n = Array.length t.shadow in
  if addr >= n then begin
    let a =
      Array.init
        (max 4096 (max (2 * n) (addr + 1)))
        (fun i -> if i < n then Array.unsafe_get t.shadow i else fresh_cell ())
    in
    t.shadow <- a
  end;
  Array.unsafe_get t.shadow addr

let is_benign t addr = List.exists (fun (b, l) -> addr >= b && addr < b + l) t.benign

let effective_sets t tid ~atomic =
  Held_locks.effective (thread_locks t tid)
    ~bus_rw:(t.config.bus_model = Helgrind.Rw_lock)
    ~atomic

let name_of t uid =
  match Hashtbl.find_opt t.lock_names uid with
  | Some n -> Printf.sprintf "%S" n
  | None -> Printf.sprintf "lock#%d" uid

let report t (ctx : Vm.Tool.ctx) ~kind ~tid ~addr ~loc (c : cell) =
  let block =
    match ctx.block_of addr with
    | Some (b : Vm.Memory.block) ->
        Some
          { Report.b_base = b.base; b_len = b.len; b_alloc_tid = b.alloc_tid; b_alloc_stack = b.alloc_stack }
    | None -> None
  in
  Report.add t.collector
    {
      Report.kind;
      addr;
      tid;
      thread_name = ctx.thread_name tid;
      stack = loc :: ctx.stack_of tid;
      detail =
        Fmt.str "Threadset of %d concurrent thread(s); candidate set %a"
          (List.length c.threadset)
          (Lockset.pp ~name_of:(name_of t))
          c.lockset;
      block;
      clock = ctx.clock ();
      provenance = None;
    }

type access = Read | Write

let check_access t ctx ~access ~tid ~addr ~atomic ~loc =
  let c = cell t addr in
  match c.threadset with
  | [ (u, k) ] when u = tid && k = Hb_clocks.clock_of t.clocks tid ->
      (* steady-state exclusive: prune + restamp is the identity, and
         the previous access already reset the lock-set to ⊤ *)
      ()
  | _ ->
  (* prune stamps that happen-before this access *)
  c.threadset <-
    List.filter
      (fun (u, clk) -> not (Hb_clocks.ordered_before t.clocks ~tid:u ~clk ~now:tid))
      c.threadset;
  c.threadset <-
    (tid, Hb_clocks.clock_of t.clocks tid) :: List.remove_assoc tid c.threadset;
  if List.length c.threadset <= 1 then
    (* effectively exclusive again: adaptive reset *)
    c.lockset <- Lockset.top
  else begin
    let any_set, write_set = effective_sets t tid ~atomic in
    let ls =
      match access with
      | Read -> Lockset.inter c.lockset any_set
      | Write -> Lockset.inter c.lockset write_set
    in
    c.lockset <- ls;
    if Lockset.is_empty ls && not (is_benign t addr) then
      match access with
      | Write -> report t ctx ~kind:Report.Race_write ~tid ~addr ~loc c
      | Read -> if t.config.report_reads then report t ctx ~kind:Report.Race_read ~tid ~addr ~loc c
  end

let acquire t tid uid mode = Held_locks.acquire (thread_locks t tid) uid mode
let release t tid uid = Held_locks.release (thread_locks t tid) uid

let on_event t (ctx : Vm.Tool.ctx) (e : Vm.Event.t) =
  (* clocks first: an acquire's edge must be visible to the accesses
     that follow it, and the access pruning below reads them *)
  Hb_clocks.on_event t.clocks e;
  match e with
  | E_read { tid; addr; atomic; loc; _ } -> check_access t ctx ~access:Read ~tid ~addr ~atomic ~loc
  | E_write { tid; addr; atomic; loc; _ } ->
      check_access t ctx ~access:Write ~tid ~addr ~atomic ~loc
  | E_alloc { addr; len; _ } ->
      let n = Array.length t.shadow in
      for a = addr to min (addr + len - 1) (n - 1) do
        let c = Array.unsafe_get t.shadow a in
        c.lockset <- Lockset.top;
        c.threadset <- []
      done
  | E_sync_create { sync; name; _ } -> (
      match Lock_id.of_sync_ref sync with
      | Some uid -> Hashtbl.replace t.lock_names uid name
      | None -> ())
  | E_acquire { tid; lock; mode; _ } -> (
      match lock with
      | Mutex m -> acquire t tid (Lock_id.of_mutex m) Vm.Eff.Write_mode
      | Rwlock rw -> acquire t tid (Lock_id.of_rwlock rw) mode
      | Cond _ | Sem _ -> ())
  | E_release { tid; lock; _ } -> (
      match lock with
      | Mutex m -> release t tid (Lock_id.of_mutex m)
      | Rwlock rw -> release t tid (Lock_id.of_rwlock rw)
      | Cond _ | Sem _ -> ())
  | E_client { req = Vm.Eff.Benign_race { addr; len }; _ } ->
      t.benign <- (addr, len) :: t.benign
  | E_thread_start _ | E_thread_exit _ | E_spawn _ | E_join _ | E_free _ | E_cond_signal _
  | E_cond_wait_pre _ | E_cond_wait_post _ | E_sem_post _ | E_sem_wait_post _ | E_client _ ->
      ()

let tool t = Vm.Tool.make ~name:"racetrack" ~on_event:(on_event t)
