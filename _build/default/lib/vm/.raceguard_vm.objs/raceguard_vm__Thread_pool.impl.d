lib/vm/thread_pool.ml: Api Array Msg_queue Printf Raceguard_util
