lib/sip/routing.mli:
