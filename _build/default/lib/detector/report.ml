(** Race/deadlock reports and the de-duplicating collector.

    Valgrind de-duplicates errors by their call-stack signature; the
    paper counts "reported possible data race {e locations}" (Figure 6),
    i.e. distinct signatures, not individual dynamic occurrences.  The
    collector keeps both: every occurrence, and the deduplicated
    location list with occurrence counts. *)

module Loc = Raceguard_util.Loc

type kind =
  | Race_write  (** write with empty candidate lock-set *)
  | Race_read  (** read with empty candidate lock-set in Shared-Modified *)
  | Lock_order  (** lock acquisition order inverts an earlier order *)

let pp_kind ppf = function
  | Race_write -> Fmt.string ppf "Possible data race writing variable"
  | Race_read -> Fmt.string ppf "Possible data race reading variable"
  | Lock_order -> Fmt.string ppf "Lock order violation (potential deadlock)"

type block_info = {
  b_base : int;
  b_len : int;
  b_alloc_tid : int;
  b_alloc_stack : Loc.t list;
}

type t = {
  kind : kind;
  addr : int;
  tid : int;
  thread_name : string;
  stack : Loc.t list;  (** innermost frame first *)
  detail : string;  (** e.g. "Previous state: shared RO, no locks" *)
  block : block_info option;
  clock : int;
}

(* --- signatures ---------------------------------------------------- *)

(** Number of stack frames participating in the dedup signature
    (Valgrind's default is the top 4). *)
let signature_depth = 4

let rec take n = function [] -> [] | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

type signature = kind * Loc.t list

let signature r : signature = (r.kind, take signature_depth r.stack)

(* --- rendering ----------------------------------------------------- *)

let pp_stack ppf stack =
  List.iteri
    (fun i loc -> Fmt.pf ppf "   %s %a@\n" (if i = 0 then "at" else "by") Loc.pp loc)
    stack

let pp ppf r =
  Fmt.pf ppf "%a at %#x@\n" pp_kind r.kind r.addr;
  pp_stack ppf r.stack;
  (match r.block with
  | Some b ->
      Fmt.pf ppf " Address %#x is %d words inside a block of size %d alloc'd by thread %d@\n"
        r.addr (r.addr - b.b_base) b.b_len b.b_alloc_tid;
      pp_stack ppf (take signature_depth b.b_alloc_stack)
  | None -> ());
  if r.detail <> "" then Fmt.pf ppf " %s@\n" r.detail

(* --- collector ------------------------------------------------------ *)

module Sig_map = Map.Make (struct
  type t = signature

  let compare (k1, s1) (k2, s2) =
    let c = compare k1 k2 in
    if c <> 0 then c else List.compare Loc.compare s1 s2
end)

type collector = {
  mutable all : t list;  (** reverse chronological *)
  mutable by_sig : (t * int) Sig_map.t;  (** first occurrence, count *)
  mutable suppressed : int;
  mutable suppressions : Suppression.t list;
}

let collector ?(suppressions = []) () =
  { all = []; by_sig = Sig_map.empty; suppressed = 0; suppressions }

let add c r =
  if List.exists (fun s -> Suppression.matches s ~kind:(Fmt.str "%a" pp_kind r.kind) ~stack:r.stack) c.suppressions
  then c.suppressed <- c.suppressed + 1
  else begin
    c.all <- r :: c.all;
    let s = signature r in
    c.by_sig <-
      Sig_map.update s
        (function None -> Some (r, 1) | Some (first, n) -> Some (first, n + 1))
        c.by_sig
  end

(** All occurrences, in chronological order. *)
let occurrences c = List.rev c.all

(** Distinct reported locations (the Figure 6 metric), with occurrence
    counts, ordered by first occurrence. *)
let locations c =
  Sig_map.bindings c.by_sig
  |> List.map (fun (_, (r, n)) -> (r, n))
  |> List.sort (fun (a, _) (b, _) -> compare a.clock b.clock)

let location_count c = Sig_map.cardinal c.by_sig
let occurrence_count c = List.length c.all
let suppressed_count c = c.suppressed
