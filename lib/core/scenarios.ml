(** Small self-contained VM programs used by experiments and tests:
    the paper's Figure 8 string test, the §4.3 false-negative schedule,
    the Figure 10/11 handoff patterns, and a classic lock-order
    inversion. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Refstring = Raceguard_cxxsim.Refstring

(** Figure 8: stringtest.cpp.  A [std::string] is created by the main
    thread, copied by a worker and (later) by main again.  The copies
    bump the shared reference counter with bus-locked increments while
    the [_M_is_shared] checks read it plainly — the exact access mix
    the original bus-lock model misinterprets. *)
let stringtest () =
  let lc line = Loc.v "stringtest.cpp" "main" line in
  let text = Refstring.create ~loc:(lc 16) "contents" in
  let worker () =
    Api.with_frame (Loc.v "stringtest.cpp" "workerThread" 8) @@ fun () ->
    (* std::string text = dereference-and-copy of the argument *)
    let local = Refstring.copy text in
    Api.sleep 2;
    Refstring.release local
  in
  let tid = Api.spawn ~loc:(lc 19) ~name:"workerThread" worker in
  Api.sleep 10;
  (* std::string text_copy = text;   <- reported conflict (line 22) *)
  let text_copy = Refstring.copy text in
  Api.join ~loc:(lc 25) tid;
  Refstring.release text_copy;
  Refstring.release text

(** §4.3: the delayed lock-set initialisation false negative.  One
    thread writes a shared word with no lock; another writes it while
    {e coincidentally} holding a lock.  Whether the lock-set algorithm
    reports the race depends on which access the schedule orders first
    — "this is not guaranteed to happen in the development
    environment". *)
let false_negative_schedule () =
  let lc f line = Loc.v "fneg.cpp" f line in
  let v = Api.alloc ~loc:(lc "main" 3) 1 in
  let m = Api.Mutex.create ~loc:(lc "main" 4) "coincidental" in
  let unlocked_writer () =
    Api.with_frame (lc "unlocked_writer" 7) @@ fun () ->
    Api.write ~loc:(lc "unlocked_writer" 8) v 1
  in
  let locked_writer () =
    Api.with_frame (lc "locked_writer" 11) @@ fun () ->
    Api.Mutex.with_lock ~loc:(lc "locked_writer" 12) m (fun () ->
        Api.write ~loc:(lc "locked_writer" 13) v 2)
  in
  let t1 = Api.spawn ~loc:(lc "main" 16) ~name:"unlocked" unlocked_writer in
  let t2 = Api.spawn ~loc:(lc "main" 17) ~name:"locked" locked_writer in
  Api.join ~loc:(lc "main" 18) t1;
  Api.join ~loc:(lc "main" 19) t2

(** Figure 10: thread-per-request handoff.  The producer initialises a
    buffer, {e then} spawns the worker; the worker processes and the
    producer reuses the memory only after joining.  With thread
    segments the whole exchange stays EXCLUSIVE — zero reports. *)
let handoff_per_request () =
  let lc f line = Loc.v "handoff.cpp" f line in
  let data = Api.alloc ~loc:(lc "main" 3) 8 in
  for i = 0 to 7 do
    Api.write ~loc:(lc "main" 5) (data + i) (i * i)
  done;
  let worker () =
    Api.with_frame (lc "worker" 8) @@ fun () ->
    let sum = ref 0 in
    for i = 0 to 7 do
      sum := !sum + Api.read ~loc:(lc "worker" 11) (data + i)
    done;
    Api.write ~loc:(lc "worker" 13) data !sum
  in
  let tid = Api.spawn ~loc:(lc "main" 15) ~name:"worker" worker in
  Api.join ~loc:(lc "main" 16) tid;
  (* safe: the join ordered the worker's writes before this *)
  Api.write ~loc:(lc "main" 18) data 0;
  Api.free ~loc:(lc "main" 19) data

(** Figure 11: the same exchange through a message queue and a
    pre-started worker (a one-thread pool).  The put/get ordering is
    real but invisible to the lock-set algorithm — false positives. *)
let handoff_pool () =
  let lc f line = Loc.v "handoff_pool.cpp" f line in
  let queue = Raceguard_vm.Msg_queue.create ~annotated:true ~name:"pool.q" ~capacity:4 () in
  let done_sem = Api.Sem.create ~loc:(lc "main" 4) ~init:0 "done" in
  let worker () =
    Api.with_frame (lc "worker" 6) @@ fun () ->
    let data = Raceguard_vm.Msg_queue.get queue in
    let sum = ref 0 in
    for i = 0 to 7 do
      sum := !sum + Api.read ~loc:(lc "worker" 10) (data + i)
    done;
    (* "process data": writes to producer-initialised memory *)
    Api.write ~loc:(lc "worker" 13) data !sum;
    (* instrumented build: the post/wait handback is annotated too *)
    Api.annotate_happens_before ~tag:data;
    Api.Sem.post ~loc:(lc "worker" 14) done_sem
  in
  (* the worker exists before the data does *)
  let tid = Api.spawn ~loc:(lc "main" 17) ~name:"pool-worker" worker in
  let data = Api.alloc ~loc:(lc "main" 18) 8 in
  for i = 0 to 7 do
    Api.write ~loc:(lc "main" 20) (data + i) (i * i)
  done;
  Raceguard_vm.Msg_queue.put queue data;
  Api.Sem.wait ~loc:(lc "main" 23) done_sem;
  Api.annotate_happens_after ~tag:data;
  Api.write ~loc:(lc "main" 24) data 0;
  Api.free ~loc:(lc "main" 25) data;
  Api.join ~loc:(lc "main" 26) tid

(** Synthetic high-contention microbenchmark: [threads] workers hammer
    [words] shared words, each word consistently guarded by one of
    [locks] striped mutexes, plus a bus-locked reference counter per
    iteration.  Disciplined, so every detector stays silent — the
    shadow state sits in its steady state (Shared-Modified with a
    stable candidate set) and the run is one long detector hot path. *)
let high_contention ?(threads = 4) ?(iters = 300) ?(words = 8) ?(locks = 2) () =
  let lc f line = Loc.v "contention.cpp" f line in
  let base = Api.alloc ~loc:(lc "main" 3) words in
  let refc = Api.alloc ~loc:(lc "main" 4) 1 in
  let stripes =
    Array.init locks (fun i -> Api.Mutex.create ~loc:(lc "main" 5) (Printf.sprintf "stripe%d" i))
  in
  for i = 0 to words - 1 do
    Api.write ~loc:(lc "main" 7) (base + i) 0
  done;
  Api.write ~loc:(lc "main" 8) refc 1;
  let worker k () =
    Api.with_frame (lc "hammer" 11) @@ fun () ->
    for i = 0 to iters - 1 do
      let w = (k + i) mod words in
      Api.Mutex.with_lock ~loc:(lc "hammer" 14) stripes.(w mod locks) (fun () ->
          let v = Api.read ~loc:(lc "hammer" 15) (base + w) in
          Api.write ~loc:(lc "hammer" 16) (base + w) (v + 1));
      ignore (Api.atomic_incr ~loc:(lc "hammer" 17) refc);
      ignore (Api.atomic_decr ~loc:(lc "hammer" 18) refc)
    done
  in
  let tids =
    List.init threads (fun k ->
        Api.spawn ~loc:(lc "main" 21) ~name:(Printf.sprintf "hammer%d" k) (worker k))
  in
  List.iter (Api.join ~loc:(lc "main" 22)) tids

(** Read-mostly steady state: initialise once, then [threads] readers
    sweep the words without locks — the Shared-RO fast path's best
    case (and the pattern behind the paper's read-shared tables). *)
let read_shared ?(threads = 4) ?(iters = 500) ?(words = 16) () =
  let lc f line = Loc.v "readshared.cpp" f line in
  let base = Api.alloc ~loc:(lc "main" 3) words in
  for i = 0 to words - 1 do
    Api.write ~loc:(lc "main" 5) (base + i) (i * 3)
  done;
  let reader k () =
    Api.with_frame (lc "reader" 8) @@ fun () ->
    let acc = ref 0 in
    for i = 0 to iters - 1 do
      acc := !acc + Api.read ~loc:(lc "reader" 11) (base + ((k + i) mod words))
    done;
    ignore !acc
  in
  let tids =
    List.init threads (fun k ->
        Api.spawn ~loc:(lc "main" 14) ~name:(Printf.sprintf "reader%d" k) (reader k))
  in
  List.iter (Api.join ~loc:(lc "main" 15)) tids

(** Read-shared churn: fork-join rounds of concurrent readers followed
    by single-threaded sweeps by main.  Each round promotes every word
    into the read-shared representation (genuinely concurrent readers);
    the post-join sweeps are ordered after all of them, so an adaptive
    epoch detector can demote the words back to a single read epoch
    before the next round re-promotes them.  Race-free — the
    promote/demote cycle is exercised end to end with every detector
    silent. *)
let read_shared_churn ?(threads = 4) ?(rounds = 6) ?(iters = 120) ?(words = 16) () =
  let lc f line = Loc.v "readchurn.cpp" f line in
  let base = Api.alloc ~loc:(lc "main" 3) words in
  for i = 0 to words - 1 do
    Api.write ~loc:(lc "main" 5) (base + i) i
  done;
  for round = 1 to rounds do
    let reader k () =
      Api.with_frame (lc "reader" 8) @@ fun () ->
      let acc = ref 0 in
      for i = 0 to iters - 1 do
        acc := !acc + Api.read ~loc:(lc "reader" 11) (base + ((k + i) mod words))
      done;
      ignore !acc
    in
    let tids =
      List.init threads (fun k ->
          Api.spawn ~loc:(lc "main" 14)
            ~name:(Printf.sprintf "churn%d.%d" round k)
            (reader k))
    in
    List.iter (Api.join ~loc:(lc "main" 15)) tids;
    (* the demotion window: main is ordered after every reader, and the
       repeated sweeps keep each word hot enough for a periodic
       dominance check to land while the window is open — 16 passes
       make the window wider than the default check cadence relative to
       the per-round access count, so demotion is guaranteed, not
       schedule-lucky *)
    for _pass = 1 to 16 do
      for i = 0 to words - 1 do
        ignore (Api.read ~loc:(lc "main" 18) (base + i))
      done
    done
  done

(** Lock-order inversion that does not necessarily deadlock at runtime
    (the predictive detector must still flag it), plus a knob to force
    the actual deadlock. *)
let lock_order_inversion ~force_deadlock () =
  let lc f line = Loc.v "transfer.cpp" f line in
  let accounts = Api.Mutex.create ~loc:(lc "main" 3) "accounts"
  and audit = Api.Mutex.create ~loc:(lc "main" 4) "audit" in
  let transfer () =
    Api.with_frame (lc "transfer" 6) @@ fun () ->
    Api.Mutex.lock ~loc:(lc "transfer" 7) accounts;
    if force_deadlock then Api.sleep 5 else Api.yield ();
    Api.Mutex.lock ~loc:(lc "transfer" 9) audit;
    Api.Mutex.unlock ~loc:(lc "transfer" 10) audit;
    Api.Mutex.unlock ~loc:(lc "transfer" 11) accounts
  in
  let reconcile () =
    Api.with_frame (lc "reconcile" 14) @@ fun () ->
    Api.Mutex.lock ~loc:(lc "reconcile" 15) audit;
    if force_deadlock then Api.sleep 5 else Api.yield ();
    Api.Mutex.lock ~loc:(lc "reconcile" 17) accounts;
    Api.Mutex.unlock ~loc:(lc "reconcile" 18) accounts;
    Api.Mutex.unlock ~loc:(lc "reconcile" 19) audit
  in
  let t1 = Api.spawn ~loc:(lc "main" 21) ~name:"transfer" transfer in
  if not force_deadlock then Api.join ~loc:(lc "main" 22) t1;
  let t2 = Api.spawn ~loc:(lc "main" 23) ~name:"reconcile" reconcile in
  if force_deadlock then Api.join ~loc:(lc "main" 24) t1;
  Api.join ~loc:(lc "main" 25) t2

(* ------------------------------------------------------------------ *)
(* Shipped SIP storm scenarios (raceguard-scenario/1)                  *)
(* ------------------------------------------------------------------ *)

module Scenario = Raceguard_sip.Workload.Scenario

(** T9: registration storm against the sharded registrar — five agents
    hammer REGISTER fast enough that the pool server sheds (503 +
    Retry-After, honoured by the drivers' backoff), the load factor
    crosses [grow_at] mid-storm, and the collision AOR pair lands in
    one bucket.  Resilient flavor: every invariant oracle stays clean.
    Legacy-striped flavor: collision blindness loses a binding and the
    storm drives the injected shard races. *)
let t9_storm =
  let open Scenario in
  {
    sc_name = "T9";
    sc_description = "registration storm with shedding/backoff (sharded registrar)";
    sc_sharding = Some { sp_initial = 2; sp_grow_at = 4; sp_max_shards = 8 };
    sc_agents =
      [
        {
          ag_name = "storm1";
          ag_steps =
            [ Repeat { count = 4; body = [ Register { user = "s1u%i"; domain = "example.com"; expires = 100_000 } ] } ];
        };
        {
          ag_name = "storm2";
          ag_steps =
            [ Repeat { count = 4; body = [ Register { user = "s2u%i"; domain = "example.com"; expires = 100_000 } ] } ];
        };
        {
          ag_name = "storm3";
          ag_steps =
            [
              Repeat
                { count = 3; body = [ Register { user = "s3u%i"; domain = "voip.example.net"; expires = 100_000 } ] };
              Options { domain = "example.com" };
            ];
        };
        {
          ag_name = "coll";
          ag_steps =
            [
              (* the hash-colliding pair: a legacy-striped registrar
                 silently drops the first binding *)
              Register { user = "cxryap02u"; domain = "example.com"; expires = 100_000 };
              Register { user = "cx96ar2op"; domain = "example.com"; expires = 100_000 };
              Options { domain = "example.com" };
            ];
        };
        {
          ag_name = "ping";
          ag_steps = [ Repeat { count = 3; body = [ Options { domain = "example.com" }; Sleep 3 ] } ];
        };
      ];
  }

(** T10: rebalance under load — fillers push the table across the
    growth threshold (two online doublings) while a refresher keeps
    rewriting one binding (the resize-racing-refresh window), calls
    exercise lookups mid-migration, and churn + the collision pair ride
    along.  The resilient two-lock transfer keeps the audit clean; the
    legacy flavor's unlocked transfer, stale router and collision
    blindness all surface. *)
let t10_rebalance =
  let open Scenario in
  {
    sc_name = "T10";
    sc_description = "online shard rebalance under live traffic (sharded registrar)";
    sc_sharding = Some { sp_initial = 2; sp_grow_at = 3; sp_max_shards = 8 };
    sc_agents =
      [
        {
          ag_name = "filler1";
          ag_steps =
            [ Repeat { count = 4; body = [ Register { user = "rb%i_a"; domain = "example.com"; expires = 100_000 } ] } ];
        };
        {
          ag_name = "filler2";
          ag_steps =
            [ Repeat { count = 4; body = [ Register { user = "rb%i_b"; domain = "example.com"; expires = 100_000 } ] } ];
        };
        {
          ag_name = "refresher";
          ag_steps =
            [
              Repeat
                {
                  count = 5;
                  body =
                    [ Register { user = "rbvic"; domain = "example.com"; expires = 100_000 }; Sleep 2 ];
                };
            ];
        };
        {
          ag_name = "caller";
          ag_steps =
            [
              Register { user = "rbcallee"; domain = "example.com"; expires = 100_000 };
              (* calls target the refresher's binding: cross-agent, so
                 the driver tolerates a 404 when that REGISTER was shed
                 — the lookups still cross the migration window *)
              Repeat
                {
                  count = 3;
                  body =
                    [ Call { caller = "rbx"; callee = "rbvic"; domain = "example.com"; talk = 3 } ];
                };
            ];
        };
        {
          ag_name = "churn";
          ag_steps =
            [
              Register { user = "rbtmp"; domain = "example.com"; expires = 100_000 };
              Unregister { user = "rbtmp"; domain = "example.com" };
              Register { user = "cxryap02u"; domain = "example.com"; expires = 100_000 };
              Register { user = "cx96ar2op"; domain = "example.com"; expires = 100_000 };
            ];
        };
      ];
  }

let sip_scenarios = [ t9_storm; t10_rebalance ]

let sip_lookup name =
  List.find_opt (fun (sc : Scenario.t) -> sc.Scenario.sc_name = name) sip_scenarios
