(** Server transaction / response cache (RFC 3261 §17.2 flavour).

    The resilient proxy remembers the final response of every completed
    transaction so a retransmitted request is answered from the cache
    instead of being re-executed (re-execution is what turns a
    duplicated INVITE into a spurious 482).  Entries live in VM memory
    behind a {e reader-writer} lock: lookups take the read lock and
    bump a hit counter with a bus-locked increment, stores take the
    write lock; a replaced entry is unlinked under the write lock and
    deleted outside it — new detector-visible synchronization the
    chaos matrix exercises, recognised as recovery-path traffic by the
    ground-truth classifier ({!Bugs.recovery_path}). *)

val txn_entry_class : Raceguard_cxxsim.Object_model.class_desc

type t

val create : alloc:Raceguard_cxxsim.Allocator.t -> annotate:bool -> t

val key : call_id:string -> cseq:int -> meth:int -> int
(** Transaction key: Call-ID × CSeq × method (CANCEL shares the
    INVITE's CSeq but is a distinct transaction). *)

val lookup : t -> key:int -> string option
(** The cached final response wire, if this transaction already
    completed (read lock + atomic hit count). *)

val store : t -> key:int -> status:int -> wire:string -> unit
(** Record a transaction's final response (write lock; replaces any
    previous entry, deleting it outside the lock). *)

val size : t -> int
val hits : t -> int  (** host-side mirror of total lookup hits *)

val destroy : t -> unit
(** Delete every entry (server shutdown). *)
