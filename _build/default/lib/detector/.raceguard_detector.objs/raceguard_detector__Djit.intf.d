lib/detector/djit.mli: Raceguard_vm Report Suppression
