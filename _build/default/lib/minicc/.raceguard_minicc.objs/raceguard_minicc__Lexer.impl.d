lib/minicc/lexer.ml: Buffer List Printf String Token
