lib/detector/lock_id.ml: Fmt Raceguard_vm
