(** Suppression files.

    Valgrind lets users silence known-benign or unfixable report sites
    ("false positives or part of code that is not modifiable (e.g.,
    third-party libraries)", §2.3.1) with a file of report-type and
    call-stack patterns.  We support the same shape:

    {v
    {
      name-of-suppression
      kind: Possible data race*
      frame: std::string::*
      frame: *
      frame: main (proxy.cpp:42
    }
    v}

    [kind:] matches the report headline; each [frame:] line matches one
    stack frame (formatted as ["func (file:line)"]) from the top.
    Patterns use [*] as a wildcard over any substring. *)

type t = { name : string; kind_pattern : string; frame_patterns : string list }

let make ~name ~kind_pattern ~frame_patterns = { name; kind_pattern; frame_patterns }

(* glob match with '*' wildcards only *)
let glob_match pattern s =
  let np = String.length pattern and ns = String.length s in
  (* dp.(i) = set of reachable pattern positions after consuming i chars *)
  let rec go pi si =
    if pi = np then si = ns
    else if pattern.[pi] = '*' then
      (* '*' eats zero or more characters *)
      go (pi + 1) si || (si < ns && go pi (si + 1))
    else si < ns && pattern.[pi] = s.[si] && go (pi + 1) (si + 1)
  in
  go 0 0

let frame_to_string loc =
  Printf.sprintf "%s (%s:%d)" (Raceguard_util.Loc.func loc) (Raceguard_util.Loc.file loc)
    (Raceguard_util.Loc.line loc)

let matches t ~kind ~stack =
  glob_match t.kind_pattern kind
  &&
  let rec go patterns frames =
    match (patterns, frames) with
    | [], _ -> true
    | _ :: _, [] -> false
    | p :: ps, f :: fs -> glob_match p (frame_to_string f) && go ps fs
  in
  go t.frame_patterns (List.map (fun l -> l) stack)

(* --- parsing -------------------------------------------------------- *)

exception Parse_error of string

(** Parse a suppression file body.  Raises {!Parse_error}. *)
let parse_string body =
  let lines = String.split_on_char '\n' body in
  let trim = String.trim in
  let rec skip_blank = function
    | l :: rest when trim l = "" -> skip_blank rest
    | rest -> rest
  in
  let rec parse_entries acc lines =
    match skip_blank lines with
    | [] -> List.rev acc
    | l :: rest when trim l = "{" -> (
        match skip_blank rest with
        | [] -> raise (Parse_error "unexpected end of file after '{'")
        | name_line :: rest ->
            let name = trim name_line in
            let rec parse_fields kind frames = function
              | [] -> raise (Parse_error "missing '}'")
              | l :: rest when trim l = "}" ->
                  let kind = match kind with Some k -> k | None -> "*" in
                  (make ~name ~kind_pattern:kind ~frame_patterns:(List.rev frames), rest)
              | l :: rest -> (
                  let l = trim l in
                  if l = "" then parse_fields kind frames rest
                  else
                    match String.index_opt l ':' with
                    | None -> raise (Parse_error ("malformed line: " ^ l))
                    | Some i ->
                        let field = trim (String.sub l 0 i) in
                        let value = trim (String.sub l (i + 1) (String.length l - i - 1)) in
                        (match field with
                        | "kind" -> parse_fields (Some value) frames rest
                        | "frame" -> parse_fields kind (value :: frames) rest
                        | _ -> raise (Parse_error ("unknown field: " ^ field))))
            in
            let entry, rest = parse_fields None [] rest in
            parse_entries (entry :: acc) rest)
    | l :: _ -> raise (Parse_error ("expected '{', got: " ^ trim l))
  in
  parse_entries [] lines

(** Build a suppression matching exactly one report location — what
    Valgrind's [--gen-suppressions=yes] prints so the user can paste it
    into a file after triaging a warning as benign. *)
let of_frames ~name ~kind ~frames =
  make ~name ~kind_pattern:kind
    ~frame_patterns:
      (List.map frame_to_string
         (let rec take n = function
            | [] -> []
            | x :: r -> if n = 0 then [] else x :: take (n - 1) r
          in
          take 4 frames))

let to_string t =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\n";
  Buffer.add_string b ("  " ^ t.name ^ "\n");
  Buffer.add_string b ("  kind: " ^ t.kind_pattern ^ "\n");
  List.iter (fun f -> Buffer.add_string b ("  frame: " ^ f ^ "\n")) t.frame_patterns;
  Buffer.add_string b "}\n";
  Buffer.contents b
