(* Systematic schedule exploration: deterministically find the §4.3
   race that the lock-set algorithm only reports on some schedules.

     dune exec examples/schedule_search.exe *)

let () = print_endline (Raceguard.Experiments.explore ())
