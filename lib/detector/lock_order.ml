(** Lock-order analysis: predictive deadlock detection.

    Helgrind "also does dead-lock detection" (§3.3), making the
    application's home-grown timeout-based detector (which itself
    contained one of the data races found, §4.1) unnecessary.  The
    classical technique: record the order in which each thread nests
    lock acquisitions; if thread A ever takes L1 then L2 while thread B
    takes L2 then L1, the program can deadlock even if this run did
    not.  We build the acquisition-order graph and report every edge
    that closes a cycle. *)

module Loc = Raceguard_util.Loc
module Vm = Raceguard_vm
open Vm.Event

type edge_info = { e_tid : int; e_stack : Loc.t list; e_clock : int }

type t = {
  held : (int, int list) Hashtbl.t;  (** tid -> uids held, innermost first *)
  edges : (int * int, edge_info) Hashtbl.t;  (** (before, after) *)
  succs : (int, int list ref) Hashtbl.t;
  lock_names : (int, string) Hashtbl.t;
  collector : Report.collector;
  mutable reported_pairs : (int * int) list;
}

let create ?(suppressions = []) () =
  {
    held = Hashtbl.create 64;
    edges = Hashtbl.create 256;
    succs = Hashtbl.create 64;
    lock_names = Hashtbl.create 64;
    collector = Report.collector ~suppressions ();
    reported_pairs = [];
  }

let reports t = Report.occurrences t.collector
let locations t = Report.locations t.collector
let location_count t = Report.location_count t.collector
let collector t = t.collector

let name_of t uid =
  match Hashtbl.find_opt t.lock_names uid with
  | Some n -> Printf.sprintf "%S" n
  | None -> Printf.sprintf "lock#%d" uid

let succs t uid =
  match Hashtbl.find_opt t.succs uid with
  | Some l -> !l
  | None -> []

let add_succ t a b =
  match Hashtbl.find_opt t.succs a with
  | Some l -> if not (List.mem b !l) then l := b :: !l
  | None -> Hashtbl.replace t.succs a (ref [ b ])

(* is [target] reachable from [from] in the order graph? *)
let reachable t ~from ~target =
  let visited = Hashtbl.create 16 in
  let rec go uid =
    uid = target
    || (not (Hashtbl.mem visited uid))
       && begin
            Hashtbl.replace visited uid ();
            List.exists go (succs t uid)
          end
  in
  go from

let report_cycle t (ctx : Vm.Tool.ctx) ~tid ~held_uid ~new_uid ~loc =
  let pair = (min held_uid new_uid, max held_uid new_uid) in
  if not (List.mem pair t.reported_pairs) then begin
    t.reported_pairs <- pair :: t.reported_pairs;
    let other =
      match Hashtbl.find_opt t.edges (new_uid, held_uid) with
      | Some e -> Fmt.str "; opposite order taken by thread %d" e.e_tid
      | None -> ""
    in
    Report.add t.collector
      {
        Report.kind = Report.Lock_order;
        addr = new_uid;
        tid;
        thread_name = ctx.thread_name tid;
        stack = loc :: ctx.stack_of tid;
        detail =
          Fmt.str "acquiring %s while holding %s inverts an established order%s"
            (name_of t new_uid) (name_of t held_uid) other;
        block = None;
        clock = ctx.clock ();
        provenance = None;
      }
  end

let on_acquire t ctx ~tid ~uid ~loc =
  let held = match Hashtbl.find_opt t.held tid with Some h -> h | None -> [] in
  List.iter
    (fun h ->
      if h <> uid then begin
        (* adding edge h -> uid; a path uid -> h means a cycle *)
        if reachable t ~from:uid ~target:h then report_cycle t ctx ~tid ~held_uid:h ~new_uid:uid ~loc;
        if not (Hashtbl.mem t.edges (h, uid)) then begin
          Hashtbl.replace t.edges (h, uid) { e_tid = tid; e_stack = ctx.stack_of tid; e_clock = ctx.clock () };
          add_succ t h uid
        end
      end)
    held;
  Hashtbl.replace t.held tid (uid :: held)

let on_release t ~tid ~uid =
  match Hashtbl.find_opt t.held tid with
  | None -> ()
  | Some held ->
      let rec remove_one = function
        | [] -> []
        | x :: rest -> if x = uid then rest else x :: remove_one rest
      in
      Hashtbl.replace t.held tid (remove_one held)

let on_event t (ctx : Vm.Tool.ctx) (e : Vm.Event.t) =
  match e with
  | E_sync_create { sync; name; _ } -> (
      match Lock_id.of_sync_ref sync with
      | Some uid -> Hashtbl.replace t.lock_names uid name
      | None -> ())
  | E_acquire { tid; lock; loc; _ } -> (
      match Lock_id.of_sync_ref lock with
      | Some uid -> on_acquire t ctx ~tid ~uid ~loc
      | None -> ())
  | E_release { tid; lock; _ } -> (
      match Lock_id.of_sync_ref lock with
      | Some uid -> on_release t ~tid ~uid
      | None -> ())
  | E_thread_start _ | E_thread_exit _ | E_spawn _ | E_join _ | E_read _ | E_write _
  | E_alloc _ | E_free _ | E_cond_signal _ | E_cond_wait_pre _ | E_cond_wait_post _
  | E_sem_post _ | E_sem_wait_post _ | E_client _ ->
      ()

let tool t = Vm.Tool.make ~name:"lock-order" ~on_event:(on_event t)

(* ------------------------------------------------------------------ *)
(* Pure acquisition-order graphs over hypothetical edges               *)
(* ------------------------------------------------------------------ *)

(** A persistent acquisition-order graph for what-if queries: the
    repair engine builds one from the static nesting structure of a
    program (original and patched) and asks whether a candidate patch
    introduces an inversion that was not already possible. *)
module Static_graph = struct
  module IMap = Map.Make (Int)
  module ISet = Set.Make (Int)

  type nonrec t = { g_succs : ISet.t IMap.t }

  let empty = { g_succs = IMap.empty }

  let succs g a =
    match IMap.find_opt a g.g_succs with Some s -> s | None -> ISet.empty

  let add_edge g ~before ~after =
    if before = after then g
    else { g_succs = IMap.update before
             (fun o -> Some (ISet.add after (Option.value ~default:ISet.empty o)))
             g.g_succs }

  let of_edges edges =
    List.fold_left (fun g (a, b) -> add_edge g ~before:a ~after:b) empty edges

  let edges g =
    IMap.fold (fun a s acc -> ISet.fold (fun b acc -> (a, b) :: acc) s acc) g.g_succs []
    |> List.sort compare

  let reachable g ~from ~target =
    let visited = Hashtbl.create 16 in
    let rec go uid =
      uid = target
      || (not (Hashtbl.mem visited uid))
         && begin
              Hashtbl.replace visited uid ();
              ISet.exists go (succs g uid)
            end
    in
    go from

  let nodes g =
    IMap.fold (fun a s acc -> ISet.add a (ISet.union s acc)) g.g_succs ISet.empty

  (* every unordered pair {a, b} with both a->b and b->a paths — the
     pair need not be directly adjacent (a cycle inverts all its
     member pairs) *)
  let inversions g =
    let ns = ISet.elements (nodes g) in
    let pairs = ref [] in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if a < b && reachable g ~from:a ~target:b && reachable g ~from:b ~target:a
            then pairs := (a, b) :: !pairs)
          ns)
      ns;
    List.sort compare !pairs

  let adds_inversion g ~before ~after =
    before <> after
    && reachable g ~from:after ~target:before
    && not (reachable g ~from:before ~target:after)
end
