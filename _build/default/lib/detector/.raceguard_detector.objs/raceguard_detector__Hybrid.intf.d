lib/detector/hybrid.mli: Helgrind Raceguard_vm Report Suppression
