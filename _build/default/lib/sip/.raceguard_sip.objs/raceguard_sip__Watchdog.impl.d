lib/sip/watchdog.ml: Raceguard_util Raceguard_vm
