(** Packed FastTrack epochs.

    An epoch is one access stamp [tid × clk] packed into a single
    immediate integer, so the overwhelmingly common "did this access
    happen-before me?" test is one unboxed compare instead of a
    vector-clock walk — FastTrack's key observation (Flanagan & Freund,
    surveyed in PAPERS.md): almost every access is non-racy and can be
    decided against a {e single} previous access, not a whole clock.

    Layout: [clk lsl tid_bits | (tid + 1)].  The +1 keeps 0 free as the
    distinguished "no access" epoch, so a fresh shadow cell is
    all-zeros and range-clearing an allocation is a plain int store per
    word.  OCaml's 63-bit ints leave 50 bits of clock at 12 bits of
    tid — both far beyond what the deterministic VM can retire. *)

type t = int

let tid_bits = 12

(** Largest representable thread id ([tid + 1] must fit). *)
let max_tid = (1 lsl tid_bits) - 2

let tid_mask = (1 lsl tid_bits) - 1

(** The "no access yet" epoch — compares unequal to every real one. *)
let none = 0

let is_none e = e = 0

let make ~tid ~clk =
  if tid < 0 || tid > max_tid then invalid_arg "Epoch.make: tid out of range";
  (clk lsl tid_bits) lor (tid + 1)

let tid e = (e land tid_mask) - 1
let clk e = e lsr tid_bits

(** Is the access stamped [e] ordered before the clock state [vc]?
    O(1): one array load in [vc].  [none] is vacuously ordered. *)
let ordered_before e vc =
  e = 0 || Vector_clock.ordered_before ~tid:(tid e) ~clk:(clk e) vc

let pp ppf e =
  if e = 0 then Fmt.string ppf "<none>" else Fmt.pf ppf "%d@%d" (clk e) (tid e)
