(* Unit and property tests for raceguard_util. *)

module Rng = Raceguard_util.Rng
module Iss = Raceguard_util.Int_sorted_set
module Growvec = Raceguard_util.Growvec
module Loc = Raceguard_util.Loc
module Table = Raceguard_util.Table

let test_rng_deterministic () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let la = List.init 16 (fun _ -> Rng.next a) in
  let lb = List.init 16 (fun _ -> Rng.next b) in
  Alcotest.(check bool) "different seeds differ" true (la <> lb)

let test_rng_bounds () =
  let r = Rng.create ~seed:99 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in_range r ~lo:(-3) ~hi:4 in
    Alcotest.(check bool) "in [-3,4]" true (v >= -3 && v <= 4)
  done

let test_rng_nonnegative () =
  (* regression: Int64->int truncation used to produce negatives *)
  let r = Rng.create ~seed:42 in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "next >= 0" true (Rng.next r >= 0)
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:5 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle_in_place r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let r = Rng.create ~seed:7 in
  let s = Rng.split r in
  let a = List.init 8 (fun _ -> Rng.next r) in
  let b = List.init 8 (fun _ -> Rng.next s) in
  Alcotest.(check bool) "split streams differ" true (a <> b)

let test_iss_basics () =
  let s = Iss.of_list [ 3; 1; 2; 3; 1 ] in
  Alcotest.(check int) "dedup" 3 (Iss.cardinal s);
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Iss.to_list s);
  Alcotest.(check bool) "mem" true (Iss.mem 2 s);
  Alcotest.(check bool) "not mem" false (Iss.mem 4 s);
  let s' = Iss.add 0 s in
  Alcotest.(check (list int)) "add front" [ 0; 1; 2; 3 ] (Iss.to_list s');
  let s'' = Iss.remove 2 s' in
  Alcotest.(check (list int)) "remove" [ 0; 1; 3 ] (Iss.to_list s'');
  Alcotest.(check bool) "add existing is same" true (Iss.equal s (Iss.add 2 s))

let test_iss_inter () =
  let a = Iss.of_list [ 1; 2; 3; 5; 8 ] and b = Iss.of_list [ 2; 3; 4; 8; 9 ] in
  Alcotest.(check (list int)) "inter" [ 2; 3; 8 ] (Iss.to_list (Iss.inter a b));
  Alcotest.(check bool) "inter empty" true (Iss.is_empty (Iss.inter a Iss.empty));
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 5; 8; 9 ] (Iss.to_list (Iss.union a b))

(* property: Iss behaves like Stdlib Set over small ints *)
module IS = Set.Make (Int)

let ints_gen = QCheck2.Gen.(list_size (int_bound 12) (int_bound 20))

let qc_iss_model =
  QCheck2.Test.make ~name:"Int_sorted_set models Stdlib.Set" ~count:500
    QCheck2.Gen.(pair ints_gen ints_gen)
    (fun (la, lb) ->
      let sa = Iss.of_list la and sb = Iss.of_list lb in
      let ma = IS.of_list la and mb = IS.of_list lb in
      Iss.to_list (Iss.inter sa sb) = IS.elements (IS.inter ma mb)
      && Iss.to_list (Iss.union sa sb) = IS.elements (IS.union ma mb)
      && List.for_all (fun x -> Iss.mem x sa = IS.mem x ma) (la @ lb)
      && Iss.subset sa (Iss.union sa sb))

let qc_iss_inter_laws =
  QCheck2.Test.make ~name:"intersection is commutative/associative/idempotent" ~count:300
    QCheck2.Gen.(triple ints_gen ints_gen ints_gen)
    (fun (la, lb, lc) ->
      let a = Iss.of_list la and b = Iss.of_list lb and c = Iss.of_list lc in
      Iss.equal (Iss.inter a b) (Iss.inter b a)
      && Iss.equal (Iss.inter a (Iss.inter b c)) (Iss.inter (Iss.inter a b) c)
      && Iss.equal (Iss.inter a a) a)

let test_growvec () =
  let v = Growvec.create ~dummy:0 in
  Alcotest.(check int) "empty" 0 (Growvec.length v);
  for i = 0 to 99 do
    Alcotest.(check int) "push index" i (Growvec.push v (i * 2))
  done;
  Alcotest.(check int) "length" 100 (Growvec.length v);
  Alcotest.(check int) "get" 84 (Growvec.get v 42);
  Growvec.set v 42 7;
  Alcotest.(check int) "set" 7 (Growvec.get v 42);
  Alcotest.(check int) "fold" (List.length (Growvec.to_list v))
    (Growvec.fold (fun n _ -> n + 1) 0 v);
  Alcotest.check_raises "oob get" (Invalid_argument "Growvec.get: index out of bounds")
    (fun () -> ignore (Growvec.get v 100));
  Growvec.clear v;
  Alcotest.(check int) "clear" 0 (Growvec.length v)

let test_loc () =
  let a = Loc.v "f.c" "g" 3 and b = Loc.v "f.c" "g" 3 and c = Loc.v "f.c" "g" 4 in
  Alcotest.(check bool) "equal" true (Loc.equal a b);
  Alcotest.(check bool) "not equal" false (Loc.equal a c);
  Alcotest.(check int) "hash stable" (Loc.hash a) (Loc.hash b);
  Alcotest.(check string) "pp" "g (f.c:3)" (Loc.to_string a);
  Alcotest.(check int) "compare refl" 0 (Loc.compare a b);
  Alcotest.(check bool) "ordering antisym" true (Loc.compare a c = -Loc.compare c a)

let test_table () =
  let t =
    Table.create ~headers:[ "name"; "n" ] ~aligns:[ Table.Left; Table.Right ] ()
  in
  let t = Table.add_row t [ "alpha"; "1" ] in
  let t = Table.add_row t [ "b"; "100" ] in
  let rendered = Table.render t in
  Alcotest.(check bool) "contains rows" true
    (String.length rendered > 0
    && List.length (String.split_on_char '\n' rendered) = 4);
  Alcotest.check_raises "row arity" (Invalid_argument "Table.add_row: row length mismatch")
    (fun () -> ignore (Table.add_row t [ "only-one" ]))

let test_stacked_bars () =
  let s =
    Table.render_stacked_bars ~title:"t" ~segments:[ ("a", '#'); ("b", '+') ]
      ~rows:[ ("r1", [ 10; 5 ]); ("r2", [ 0; 20 ]) ]
      ~max_width:40
  in
  Alcotest.(check bool) "mentions legend" true
    (String.length s > 0 && String.index_opt s '#' <> None)

let suite =
  ( "util",
    [
      Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
      Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
      Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
      Alcotest.test_case "rng non-negative" `Quick test_rng_nonnegative;
      Alcotest.test_case "rng shuffle is a permutation" `Quick test_rng_shuffle_permutation;
      Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
      Alcotest.test_case "sorted set basics" `Quick test_iss_basics;
      Alcotest.test_case "sorted set inter/union" `Quick test_iss_inter;
      QCheck_alcotest.to_alcotest qc_iss_model;
      QCheck_alcotest.to_alcotest qc_iss_inter_laws;
      Alcotest.test_case "growvec" `Quick test_growvec;
      Alcotest.test_case "loc" `Quick test_loc;
      Alcotest.test_case "table rendering" `Quick test_table;
      Alcotest.test_case "stacked bars" `Quick test_stacked_bars;
    ] )
