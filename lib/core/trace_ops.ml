(** Record / replay / diff / time-travel orchestration over
    [raceguard-trace/1] binary traces — the user-facing face of the
    offline plane ({!Raceguard_detector.Offline} + {!Raceguard_trace}).

    - {!record_test} runs a SIP test case once with the compact binary
      recorder attached (zero analysis unless live verification sinks
      are requested) and returns the sealed trace;
    - {!replay_parallel} drives any subset of the ten registry
      configurations over a decoded trace, optionally fanned across
      domains with the work-stealing pool — detector instances are
      per-cell, so verdicts are identical for any domain count;
    - {!info_json} / {!diff_json} are the machine-readable views the
      CLI prints ([raceguard-trace-info/1], [raceguard-trace-diff/1]);
    - {!explain_from_trace} is time travel: replay a
      provenance-recording detector, then walk each warning's
      shadow-state transition history back to the exact trace entries
      (byte offsets included) and cut a window of the surrounding
      schedule.

    Because the recorder writes no timestamps and the VM is
    deterministic in (seed, workload), recording the same test case
    twice yields byte-identical trace files — pinned by test. *)

module Vm = Raceguard_vm
module Det = Raceguard_detector
module Sip = Raceguard_sip
module Obs = Raceguard_obs
module Trace = Raceguard_trace
module Json = Obs.Json
module Par = Raceguard_par.Par

(* --- record --------------------------------------------------------- *)

type recorded = {
  rec_recorder : Det.Offline.recorder;
  rec_outcome : Vm.Engine.outcome;
  rec_live : Det.Offline.verdict list;
      (** live verdicts of the verification sinks, if any were attached *)
}

(** Run [tc] once with the binary recorder attached.  [live] names
    registry configurations to run {e alongside} the recorder on the
    same VM run: tools are pure observers, so the recording is
    unperturbed and the returned live verdicts describe exactly the
    execution the trace captured — the ground truth replay must
    reproduce. *)
let record_test ?(seed = 7) ?snapshot_every ?(live = []) (tc : Sip.Workload.test_case) =
  let meta =
    [
      ("workload", tc.Sip.Workload.tc_name);
      ("seed", string_of_int seed);
      ("generator", "raceguard-experiments");
    ]
  in
  let recorder = Det.Offline.create_recorder ?snapshot_every ~meta () in
  let sinks = List.map Det.Offline.sink live in
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
  Vm.Engine.add_tool vm (Det.Offline.tool recorder);
  List.iter (fun s -> Vm.Engine.add_tool vm s.Det.Offline.sk_tool) sinks;
  let transport = Sip.Transport.create () in
  let outcome =
    Vm.Engine.run vm (fun () ->
        ignore
          (Sip.Workload.run_test_case ~transport ~server_config:Runner.default.Runner.server
             tc ()))
  in
  let events = Det.Offline.length recorder in
  {
    rec_recorder = recorder;
    rec_outcome = outcome;
    rec_live = List.map (Det.Offline.verdict_of_sink ~events) sinks;
  }

(* --- write-behind recording ----------------------------------------- *)

(** Write-behind record mode.  The VM is fully deterministic in
    (workload, seed), so the only thing a recording of the monitored
    run has to persist {e is} (workload, seed) — the classic
    deterministic record/replay result: log the nondeterministic
    inputs, nothing else, and here the RNG seed is the only input.  The
    monitored run therefore executes with {e zero} recording work
    attached (per-event capture would cost 1.5-3x on this VM, which
    retires ~5M events/sec — no observer that allocates or retains can
    stay inside a 10% budget), and the binary trace — the materialized
    event stream that lets detectors replay without re-executing — is
    produced afterwards by a capture re-execution at save time.
    {!materialize} runs that capture pass once and caches it; the bench
    gates the monitored run's overhead (~1.0 by construction) and
    reports the materialization cost as its own row, so nothing is
    hidden. *)
type deferred = {
  df_test : Sip.Workload.test_case;
  df_seed : int;
  df_snapshot_every : int option;
  df_outcome : Vm.Engine.outcome;  (** of the monitored run *)
  mutable df_forced : recorded option;
}

(** The monitored run: execute [tc] with recording enabled — which,
    write-behind, means executing it untouched and remembering the
    determinizing inputs. *)
let record_deferred ?(seed = 7) ?snapshot_every (tc : Sip.Workload.test_case) =
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
  let transport = Sip.Transport.create () in
  let outcome =
    Vm.Engine.run vm (fun () ->
        ignore
          (Sip.Workload.run_test_case ~transport ~server_config:Runner.default.Runner.server
             tc ()))
  in
  {
    df_test = tc;
    df_seed = seed;
    df_snapshot_every = snapshot_every;
    df_outcome = outcome;
    df_forced = None;
  }

(** The capture pass: re-execute deterministically with the recorder
    tool attached and seal the trace.  Cached — repeated saves reuse
    the first materialization. *)
let materialize d =
  match d.df_forced with
  | Some r -> r
  | None ->
      let r = record_test ~seed:d.df_seed ?snapshot_every:d.df_snapshot_every d.df_test in
      d.df_forced <- Some r;
      r

let test_case_of_string = Explain.test_case_of_string

(* --- replay --------------------------------------------------------- *)

(** Fan the named configurations over [trace] on the work-stealing
    pool: one cell per configuration, each with a fresh detector
    instance.  Sequential ([domains = 1]) and parallel runs produce
    identical verdicts — the replayed stream is immutable and the
    detectors share no state. *)
let replay_parallel ?(domains = 1) ?(configs = Det.Offline.configs) trace =
  let domains = Par.resolve domains in
  Par.map_cells ~domains (Det.Offline.replay_config trace) (Array.of_list configs)
  |> Array.to_list

(** Pair replayed verdicts with live ones by config name; [`Missing]
    marks a config present on one side only. *)
let compare_verdicts ~live replayed =
  List.map
    (fun (r : Det.Offline.verdict) ->
      match
        List.find_opt (fun (l : Det.Offline.verdict) -> l.v_config = r.v_config) live
      with
      | Some l -> (r.v_config, if Det.Offline.verdict_equal l r then `Match else `Mismatch (l, r))
      | None -> (r.v_config, `Missing))
    replayed

let replay_json ?(live = []) ~trace replayed =
  let comparison = if live = [] then [] else compare_verdicts ~live replayed in
  Json.Obj
    ([
       ("schema", Json.Str "raceguard-replay/1");
       ("trace_schema", Json.Str (Trace.Reader.schema trace));
       ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) (Trace.Reader.meta trace)));
       ("events", Json.int (Trace.Reader.length trace));
       ("verdicts", Json.List (List.map Det.Offline.verdict_to_json replayed));
     ]
    @
    if comparison = [] then []
    else
      [
        ( "live_comparison",
          Json.Obj
            (List.map
               (fun (name, v) ->
                 ( name,
                   Json.Str
                     (match v with
                     | `Match -> "match"
                     | `Mismatch _ -> "MISMATCH"
                     | `Missing -> "missing") ))
               comparison) );
        ( "all_match",
          Json.Bool (List.for_all (fun (_, v) -> v = `Match) comparison) );
      ])

(* --- info ----------------------------------------------------------- *)

let kind_histogram trace =
  let counts = Array.make Vm.Event.kind_count 0 in
  Array.iter
    (fun (e : Trace.Reader.entry) ->
      let k = Vm.Event.kind_id e.en_event in
      counts.(k) <- counts.(k) + 1)
    (Trace.Reader.entries trace);
  let name_of = Hashtbl.create 17 in
  Array.iter
    (fun (e : Trace.Reader.entry) ->
      Hashtbl.replace name_of (Vm.Event.kind_id e.en_event) (Vm.Event.kind_name e.en_event))
    (Trace.Reader.entries trace);
  List.filter_map
    (fun k ->
      if counts.(k) = 0 then None
      else Some (Option.value ~default:(string_of_int k) (Hashtbl.find_opt name_of k), counts.(k)))
    (List.init Vm.Event.kind_count Fun.id)

let thread_count trace =
  Array.fold_left
    (fun acc (e : Trace.Reader.entry) ->
      match e.en_event with Vm.Event.E_thread_start _ -> acc + 1 | _ -> acc)
    0 (Trace.Reader.entries trace)

let clock_span trace =
  let es = Trace.Reader.entries trace in
  if Array.length es = 0 then (0, 0)
  else (es.(0).Trace.Reader.en_clock, es.(Array.length es - 1).Trace.Reader.en_clock)

let info_json trace =
  let first_clock, last_clock = clock_span trace in
  let events = Trace.Reader.length trace in
  let bytes = Trace.Reader.byte_size trace in
  Json.Obj
    [
      ("schema", Json.Str "raceguard-trace-info/1");
      ("trace_schema", Json.Str (Trace.Reader.schema trace));
      ("version", Json.int (Trace.Reader.version trace));
      ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) (Trace.Reader.meta trace)));
      ("events", Json.int events);
      ("bytes", Json.int bytes);
      ( "bytes_per_event",
        Json.Num (if events = 0 then 0. else float_of_int bytes /. float_of_int events) );
      ("threads", Json.int (thread_count trace));
      ("clock_first", Json.int first_clock);
      ("clock_last", Json.int last_clock);
      ( "snapshots",
        Json.List
          (List.map
             (fun (s : Trace.Reader.snapshot_mark) ->
               Json.Obj
                 [
                   ("offset", Json.int s.sn_offset);
                   ("event_index", Json.int s.sn_index);
                   ("clock", Json.int s.sn_clock);
                 ])
             (Trace.Reader.snapshots trace)) );
      ( "kinds",
        Json.Obj (List.map (fun (name, n) -> (name, Json.int n)) (kind_histogram trace)) );
    ]

let pp_info ppf trace =
  let first_clock, last_clock = clock_span trace in
  Fmt.pf ppf "@[<v>schema:    %s (version %d)@," (Trace.Reader.schema trace)
    (Trace.Reader.version trace);
  List.iter (fun (k, v) -> Fmt.pf ppf "meta:      %s = %s@," k v) (Trace.Reader.meta trace);
  Fmt.pf ppf "events:    %d (%d bytes, %.2f bytes/event)@," (Trace.Reader.length trace)
    (Trace.Reader.byte_size trace)
    (if Trace.Reader.length trace = 0 then 0.
     else float_of_int (Trace.Reader.byte_size trace) /. float_of_int (Trace.Reader.length trace));
  Fmt.pf ppf "threads:   %d@,clock:     %d .. %d@,snapshots: %d@," (thread_count trace)
    first_clock last_clock
    (List.length (Trace.Reader.snapshots trace));
  List.iter (fun (name, n) -> Fmt.pf ppf "  %-16s %d@," name n) (kind_histogram trace);
  Fmt.pf ppf "@]"

(* --- diff ----------------------------------------------------------- *)

let entry_json (e : Trace.Reader.entry) =
  Json.Obj
    [
      ("index", Json.int e.en_index);
      ("offset", Json.int e.en_offset);
      ("clock", Json.int e.en_clock);
      ("thread", Json.Str e.en_thread);
      ("event", Json.Str (Fmt.str "%a" Vm.Event.pp e.en_event));
    ]

let diff_json a b =
  let base =
    [
      ("schema", Json.Str "raceguard-trace-diff/1");
      ("left_events", Json.int (Trace.Reader.length a));
      ("right_events", Json.int (Trace.Reader.length b));
    ]
  in
  match Trace.Diff.first_divergence a b with
  | None -> Json.Obj (base @ [ ("identical", Json.Bool true) ])
  | Some d ->
      Json.Obj
        (base
        @ [
            ("identical", Json.Bool false);
            ("divergence_index", Json.int d.Trace.Diff.d_index);
            ( "left",
              match d.Trace.Diff.d_left with Some e -> entry_json e | None -> Json.Null );
            ( "right",
              match d.Trace.Diff.d_right with Some e -> entry_json e | None -> Json.Null );
            ("context", Json.List (List.map entry_json d.Trace.Diff.d_context));
          ])

(* --- Chrome export from a saved trace ------------------------------- *)

(** Re-render a decoded trace as Chrome [trace_event] JSON through the
    existing {!Obs.Trace} exporter (no ring sampling: capacity covers
    every entry). *)
let chrome_json trace =
  let n = max 1 (Trace.Reader.length trace) in
  let ring = Obs.Trace.create ~capacity:n ~sample:1 () in
  Array.iter
    (fun (e : Trace.Reader.entry) ->
      Obs.Trace.emit ring ~ts:e.en_clock ~tid:(Vm.Event.tid e.en_event)
        ~name:(Vm.Event.kind_name e.en_event) ~cat:"vm"
        ~args:[ ("thread", Json.Str e.en_thread) ]
        ())
    (Trace.Reader.entries trace);
  Obs.Trace.to_json ring

(* --- time travel: warnings -> trace offsets ------------------------- *)

type moment = {
  mo_transition : Det.Report.transition;
  mo_entry : Trace.Reader.entry option;
      (** the trace entry the transition corresponds to ([None] if the
          history outlived the trace, e.g. a truncated recording) *)
  mo_slice : Trace.Reader.entry list;  (** schedule window around it *)
}

type travel = {
  tv_report : Det.Report.t;  (** provenance filled in *)
  tv_count : int;
  tv_moments : moment list;
}

type from_trace = {
  ft_meta : (string * string) list;
  ft_config : Det.Helgrind.config;
  ft_window : int;
  ft_travels : travel list;
}

(* first entry index with clock >= c (entries are clock-sorted) *)
let lower_bound entries c =
  let n = Array.length entries in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if entries.(mid).Trace.Reader.en_clock < c then lo := mid + 1 else hi := mid
  done;
  !lo

let locate entries ~addr (t : Det.Report.transition) =
  let n = Array.length entries in
  let matches (e : Trace.Reader.entry) =
    Vm.Event.tid e.en_event = t.Det.Report.t_tid
    &&
    match (e.en_event, t.Det.Report.t_access) with
    | Vm.Event.E_read { addr = a; _ }, "read" -> a = addr
    | Vm.Event.E_write { addr = a; _ }, "write" -> a = addr
    | Vm.Event.E_client { req = Vm.Eff.Destruct { addr = a; len }; _ }, "destruct" ->
        addr >= a && addr < a + len
    | _ -> false
  in
  let rec scan i =
    if i >= n || entries.(i).Trace.Reader.en_clock > t.Det.Report.t_clock then None
    else if matches entries.(i) then Some i
    else scan (i + 1)
  in
  scan (lower_bound entries t.Det.Report.t_clock)

let slice entries ~window i =
  let n = Array.length entries in
  let lo = max 0 (i - window) and hi = min (n - 1) (i + window) in
  Array.to_list (Array.sub entries lo (hi - lo + 1))

(** Replay a provenance-recording lock-set detector over the trace and
    resolve every warning's transition history to trace entries.  The
    analysis runs on the recorded stream only — time travel without
    re-executing the program. *)
let explain_from_trace ?(base = Det.Helgrind.hwlc_dr) ?(window = 4) trace =
  let config = { base with Det.Helgrind.provenance = true } in
  let h = Det.Helgrind.create config in
  Trace.Reader.replay trace [ Det.Helgrind.tool h ];
  let entries = Trace.Reader.entries trace in
  let travels =
    List.map
      (fun ((r : Det.Report.t), count) ->
        let moments =
          match r.Det.Report.provenance with
          | None -> []
          | Some p ->
              List.map
                (fun (t : Det.Report.transition) ->
                  match locate entries ~addr:r.Det.Report.addr t with
                  | Some i ->
                      {
                        mo_transition = t;
                        mo_entry = Some entries.(i);
                        mo_slice = slice entries ~window i;
                      }
                  | None -> { mo_transition = t; mo_entry = None; mo_slice = [] })
                p.Det.Report.p_history
        in
        { tv_report = r; tv_count = count; tv_moments = moments })
      (Det.Helgrind.locations h)
  in
  {
    ft_meta = Trace.Reader.meta trace;
    ft_config = config;
    ft_window = window;
    ft_travels = travels;
  }

let pp_moment ppf m =
  let t = m.mo_transition in
  Fmt.pf ppf "@[<v2>clk %d: thread %d %s, %s -> %s" t.Det.Report.t_clock t.Det.Report.t_tid
    t.Det.Report.t_access t.Det.Report.t_from t.Det.Report.t_to;
  (match m.mo_entry with
  | Some e ->
      Fmt.pf ppf "  (trace event #%d at byte offset %d)@," e.Trace.Reader.en_index
        e.Trace.Reader.en_offset;
      List.iter
        (fun (s : Trace.Reader.entry) ->
          Fmt.pf ppf "%s %a@,"
            (if s.Trace.Reader.en_index = e.Trace.Reader.en_index then ">" else " ")
            Trace.Diff.pp_entry s)
        m.mo_slice
  | None -> Fmt.pf ppf "  (not located in this trace)@,");
  Fmt.pf ppf "@]"

let pp_from_trace ppf ft =
  Fmt.pf ppf "Time travel: %d warning location(s) under %a (window %d)@\n"
    (List.length ft.ft_travels) Det.Helgrind.pp_config_name ft.ft_config ft.ft_window;
  List.iter (fun (k, v) -> Fmt.pf ppf "  trace meta: %s = %s@\n" k v) ft.ft_meta;
  List.iteri
    (fun i tv ->
      Fmt.pf ppf "@\n--- warning %d of %d (%d occurrence(s)) ---@\n" (i + 1)
        (List.length ft.ft_travels) tv.tv_count;
      Det.Report.pp ppf tv.tv_report;
      if tv.tv_moments = [] then Fmt.pf ppf "(no provenance history recorded)@\n"
      else
        List.iter (fun m -> Fmt.pf ppf "%a@\n" pp_moment m) tv.tv_moments)
    ft.ft_travels

let from_trace_json ft =
  Json.Obj
    [
      ("schema", Json.Str "raceguard-time-travel/1");
      ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) ft.ft_meta));
      ("config", Det.Helgrind.config_to_json ft.ft_config);
      ("window", Json.int ft.ft_window);
      ( "warnings",
        Json.List
          (List.map
             (fun tv ->
               Json.Obj
                 [
                   ("count", Json.int tv.tv_count);
                   ("report", Det.Report.to_json tv.tv_report);
                   ( "moments",
                     Json.List
                       (List.map
                          (fun m ->
                            Json.Obj
                              [
                                ("transition", Det.Report.transition_to_json m.mo_transition);
                                ( "entry",
                                  match m.mo_entry with
                                  | Some e -> entry_json e
                                  | None -> Json.Null );
                                ("slice", Json.List (List.map entry_json m.mo_slice));
                              ])
                          tv.tv_moments) );
                 ])
             ft.ft_travels) );
    ]
