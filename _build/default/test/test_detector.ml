(* Tests for the Helgrind-style detector: the Figure 1 state machine,
   lock-set refinement, the bus-lock models, destructor annotations,
   rw-lock tracking, report dedup and suppressions. *)

module Vm = Raceguard_vm
module Engine = Vm.Engine
module Api = Vm.Api
module Det = Raceguard_detector
module Helgrind = Det.Helgrind
module Loc = Raceguard_util.Loc

let loc = Loc.v "prog.c" "main" 1
let wloc = Loc.v "prog.c" "worker" 2

(* run a program under a single helgrind config; return location count
   and the helgrind instance *)
let run ?(seed = 1) config f =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let h = Helgrind.create config in
  Engine.add_tool vm (Helgrind.tool h);
  let outcome = Engine.run vm f in
  (match outcome.failures with
  | [] -> ()
  | (_, name, e) :: _ -> Alcotest.failf "thread %s raised %s" name (Printexc.to_string e));
  h

let count ?seed config f = Helgrind.location_count (run ?seed config f)

(* common program shapes *)
let spawn2 body_a body_b =
  let t1 = Api.spawn ~loc ~name:"a" body_a in
  let t2 = Api.spawn ~loc ~name:"b" body_b in
  Api.join ~loc t1;
  Api.join ~loc t2

(* --- Figure 1 state machine (E3) ------------------------------------ *)

let test_single_thread_silent () =
  (* one thread, no locks, lots of traffic: never a report *)
  let n =
    count Helgrind.hwlc_dr (fun () ->
        let a = Api.alloc ~loc 8 in
        for i = 0 to 7 do
          Api.write ~loc (a + i) i
        done;
        for i = 0 to 7 do
          ignore (Api.read ~loc (a + i))
        done)
  in
  Alcotest.(check int) "exclusive accesses are silent" 0 n

let test_init_then_read_shared_silent () =
  (* initialise once, share read-only with many threads: the whole
     point of the Shared-RO state *)
  let n =
    count Helgrind.hwlc_dr (fun () ->
        let a = Api.alloc ~loc 4 in
        for i = 0 to 3 do
          Api.write ~loc (a + i) (i * 7)
        done;
        let reader () =
          for i = 0 to 3 do
            ignore (Api.read ~loc:wloc (a + i))
          done
        in
        spawn2 reader reader)
  in
  Alcotest.(check int) "read-shared data needs no locks" 0 n

let test_unlocked_cross_thread_write_reported () =
  let n =
    count Helgrind.hwlc_dr (fun () ->
        let a = Api.alloc ~loc 1 in
        Api.write ~loc a 1;
        let writer () = Api.write ~loc:wloc a 2 in
        spawn2 writer writer)
  in
  Alcotest.(check bool) "unlocked cross-thread write reported" true (n > 0)

let test_consistent_locking_silent () =
  let n =
    count Helgrind.hwlc_dr (fun () ->
        let a = Api.alloc ~loc 1 in
        let m = Api.Mutex.create ~loc "m" in
        let writer () =
          for _ = 1 to 5 do
            Api.Mutex.with_lock ~loc:wloc m (fun () ->
                Api.write ~loc:wloc a (Api.read ~loc:wloc a + 1))
          done
        in
        spawn2 writer writer)
  in
  Alcotest.(check int) "consistent locking is silent" 0 n

let test_lock_change_reported () =
  (* guarded by m1 in one thread and m2 in the other: intersection
     empties even though every access holds *a* lock *)
  let n =
    count Helgrind.hwlc_dr (fun () ->
        let a = Api.alloc ~loc 1 in
        let m1 = Api.Mutex.create ~loc "m1" in
        let m2 = Api.Mutex.create ~loc "m2" in
        let writer m () =
          for _ = 1 to 3 do
            Api.Mutex.with_lock ~loc:wloc m (fun () ->
                Api.write ~loc:wloc a (Api.read ~loc:wloc a + 1))
          done
        in
        spawn2 (writer m1) (writer m2))
  in
  Alcotest.(check bool) "different locks per thread reported" true (n > 0)

let test_two_locks_refine_to_common () =
  (* both threads hold {m1,m2}; one thread sometimes holds only m1:
     candidate set refines to {m1}, never empty: silent *)
  let n =
    count Helgrind.hwlc_dr (fun () ->
        let a = Api.alloc ~loc 1 in
        let m1 = Api.Mutex.create ~loc "m1" in
        let m2 = Api.Mutex.create ~loc "m2" in
        let both () =
          Api.Mutex.with_lock ~loc:wloc m1 (fun () ->
              Api.Mutex.with_lock ~loc:wloc m2 (fun () ->
                  Api.write ~loc:wloc a (Api.read ~loc:wloc a + 1)))
        in
        let only_m1 () =
          Api.Mutex.with_lock ~loc:wloc m1 (fun () ->
              Api.write ~loc:wloc a (Api.read ~loc:wloc a + 1))
        in
        spawn2 both only_m1)
  in
  Alcotest.(check int) "common lock suffices" 0 n

let test_alloc_resets_shadow () =
  (* racy block freed, then malloc reuses the address: the new
     lifetime must start virgin *)
  let h =
    run Helgrind.hwlc_dr (fun () ->
        let a = Api.alloc ~loc 1 in
        Api.write ~loc a 1;
        let writer () = Api.write ~loc:wloc a 2 in
        spawn2 writer writer;
        Api.free ~loc a;
        (* same address comes back from the allocator *)
        let b = Api.alloc ~loc 1 in
        assert (b = a);
        (* single-threaded use of the new block: silent *)
        Api.write ~loc:(Loc.v "prog.c" "second_life" 9) b 5)
  in
  let second_life_reports =
    List.filter
      (fun ((r : Det.Report.t), _) ->
        List.exists (fun l -> Loc.func l = "second_life") r.stack)
      (Helgrind.locations h)
  in
  Alcotest.(check int) "no report on the recycled lifetime" 0
    (List.length second_life_reports)

(* --- thread segments (E4 behaviour through the detector) ------------- *)

let test_handoff_silent_with_segments () =
  let n = count Helgrind.hwlc_dr Raceguard.Scenarios.handoff_per_request in
  Alcotest.(check int) "create/join handoff is silent" 0 n

let test_handoff_reported_without_segments () =
  let n =
    count
      { Helgrind.hwlc_dr with thread_segments = false }
      Raceguard.Scenarios.handoff_per_request
  in
  Alcotest.(check bool) "handoff reported without segments" true (n > 0)

let test_queue_handoff_reported () =
  let n = count Helgrind.hwlc_dr Raceguard.Scenarios.handoff_pool in
  Alcotest.(check bool) "queue handoff reported (Figure 11)" true (n > 0)

(* --- bus-lock models (Figure 8) -------------------------------------- *)

let refcount_program () =
  let a = Api.alloc ~loc 1 in
  Api.write ~loc a 1;
  let user () =
    (* plain read then LOCK-prefixed update: the CoW refcount pattern *)
    ignore (Api.read ~loc:wloc a);
    ignore (Api.atomic_incr ~loc:wloc a);
    ignore (Api.atomic_decr ~loc:wloc a)
  in
  spawn2 user user

let test_refcount_original_fp () =
  Alcotest.(check bool) "original model reports the refcount" true
    (count Helgrind.original refcount_program > 0)

let test_refcount_hwlc_silent () =
  Alcotest.(check int) "rw-lock model accepts the refcount" 0
    (count Helgrind.hwlc refcount_program)

let test_hwlc_still_catches_plain_write () =
  (* a plain (unlocked, non-atomic) write racing with atomic traffic
     must still be reported under HWLC *)
  let n =
    count Helgrind.hwlc (fun () ->
        let a = Api.alloc ~loc 1 in
        Api.write ~loc a 1;
        let atomic_user () = ignore (Api.atomic_incr ~loc:wloc a) in
        let plain_writer () = Api.write ~loc:wloc a 9 in
        spawn2 atomic_user plain_writer)
  in
  Alcotest.(check bool) "plain write still reported under HWLC" true (n > 0)

let test_stringtest_scenario () =
  Alcotest.(check bool) "Figure 8 fires under Original" true
    (count Helgrind.original Raceguard.Scenarios.stringtest > 0);
  Alcotest.(check int) "Figure 8 silent under HWLC" 0
    (count Helgrind.hwlc Raceguard.Scenarios.stringtest)

(* --- rw-lock tracking ------------------------------------------------- *)

let rwlock_program () =
  let a = Api.alloc ~loc 1 in
  let rw = Api.Rwlock.create ~loc "rw" in
  Api.write ~loc a 0;
  let reader () =
    for _ = 1 to 4 do
      Api.Rwlock.with_rdlock ~loc:wloc rw (fun () -> ignore (Api.read ~loc:wloc a));
      Api.yield ()
    done
  in
  let writer () =
    for _ = 1 to 4 do
      Api.Rwlock.with_wrlock ~loc:wloc rw (fun () -> Api.write ~loc:wloc a 1);
      Api.yield ()
    done
  in
  spawn2 reader writer

let test_rwlock_untracked_fp () =
  Alcotest.(check bool) "original helgrind blind to rwlocks" true
    (count Helgrind.original rwlock_program > 0)

let test_rwlock_tracked_silent () =
  Alcotest.(check int) "HWLC understands rwlocks" 0 (count Helgrind.hwlc rwlock_program)

let test_rdlock_does_not_protect_writes () =
  (* holding the lock in READ mode while writing is a violation the
     rw-aware lock-sets must catch *)
  let n =
    count Helgrind.hwlc (fun () ->
        let a = Api.alloc ~loc 1 in
        let rw = Api.Rwlock.create ~loc "rw" in
        Api.write ~loc a 0;
        let bad_writer () =
          Api.Rwlock.with_rdlock ~loc:wloc rw (fun () -> Api.write ~loc:wloc a 1)
        in
        spawn2 bad_writer bad_writer)
  in
  Alcotest.(check bool) "write under read-mode lock reported" true (n > 0)

(* --- destructor annotations (DR) -------------------------------------- *)

let dtor_program ~annotate () =
  let cls = Raceguard_cxxsim.Object_model.define ~name:"T" ~fields:[ "f" ] () in
  let m = Api.Mutex.create ~loc "m" in
  let obj = Raceguard_cxxsim.Object_model.new_ ~loc cls in
  Raceguard_cxxsim.Object_model.set ~loc cls obj "f" 1;
  let toucher () =
    Api.Mutex.with_lock ~loc:wloc m (fun () ->
        (* a virtual call reads the vptr before dispatching *)
        ignore (Raceguard_cxxsim.Object_model.vptr ~loc:wloc obj);
        ignore (Raceguard_cxxsim.Object_model.get ~loc:wloc cls obj "f"))
  in
  (* two concurrent touchers: the object genuinely becomes shared *)
  spawn2 toucher toucher;
  (* correctly deleted afterwards — but the memory is in a SHARED state
     and the destructor writes hold no lock *)
  Raceguard_cxxsim.Object_model.delete_ ~loc ~annotate cls obj

let test_dtor_fp_without_annotation () =
  Alcotest.(check bool) "destructor writes reported without DR" true
    (count Helgrind.hwlc_dr (dtor_program ~annotate:false) > 0)

let test_dtor_silent_with_annotation () =
  Alcotest.(check int) "HG_DESTRUCT suppresses the destructor chain" 0
    (count Helgrind.hwlc_dr (dtor_program ~annotate:true))

let test_annotation_ignored_by_original () =
  (* an annotated binary under the un-patched detector: requests are
     no-ops, the false positives stay *)
  Alcotest.(check bool) "original config ignores HG_DESTRUCT" true
    (count { Helgrind.hwlc with destructor_annotations = false }
       (dtor_program ~annotate:true)
    > 0)

let test_access_during_destruction_still_caught () =
  (* DR must not mask a genuine cross-thread access while destruction
     runs: a concurrent thread writes the object after HG_DESTRUCT *)
  let program () =
    let a = Api.alloc ~loc 2 in
    Api.write ~loc a 1;
    let racer () =
      Api.sleep 3;
      Api.write ~loc:wloc a 7
    in
    let t = Api.spawn ~loc ~name:"racer" racer in
    (* destruction starts while the racer is still alive *)
    Api.hg_destruct ~addr:a ~len:2;
    Api.write ~loc a 0;
    Api.sleep 10;
    Api.join ~loc t
  in
  let detected_somewhere =
    List.exists
      (fun seed -> count ~seed Helgrind.hwlc_dr program > 0)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "concurrent access during destruction reported" true
    detected_somewhere

(* --- pure Eraser ablation --------------------------------------------- *)

let test_pure_eraser_flags_initialisation () =
  let n =
    count Helgrind.pure_eraser (fun () ->
        let a = Api.alloc ~loc 1 in
        Api.write ~loc a 1)
  in
  Alcotest.(check bool) "pure Eraser cannot handle initialisation" true (n > 0)

let test_states_allow_initialisation () =
  let n =
    count Helgrind.original (fun () ->
        let a = Api.alloc ~loc 1 in
        Api.write ~loc a 1)
  in
  Alcotest.(check int) "states allow initialisation" 0 n

(* --- false negatives (§4.3 / E8) --------------------------------------- *)

let test_false_negative_depends_on_schedule () =
  let detect seed =
    Helgrind.location_count
      (run ~seed Helgrind.hwlc_dr Raceguard.Scenarios.false_negative_schedule)
    > 0
  in
  let results = List.init 30 (fun i -> detect (i + 1)) in
  Alcotest.(check bool) "missed on some schedules" true (List.exists not results);
  Alcotest.(check bool) "found on some schedules" true (List.exists Fun.id results)

(* --- benign-race client request ----------------------------------------- *)

let test_benign_race_suppressed () =
  let n =
    count Helgrind.hwlc_dr (fun () ->
        let a = Api.alloc ~loc 1 in
        Api.benign_race ~addr:a ~len:1;
        Api.write ~loc a 1;
        let writer () = Api.write ~loc:wloc a 2 in
        spawn2 writer writer)
  in
  Alcotest.(check int) "benign-race annotation silences the word" 0 n

(* --- reports: dedup, block info, suppressions ---------------------------- *)

let racy_many_times () =
  let a = Api.alloc ~loc 1 in
  Api.write ~loc a 1;
  let writer () =
    for _ = 1 to 10 do
      Api.write ~loc:wloc a 2
    done
  in
  spawn2 writer writer

let test_dedup_by_signature () =
  let h = run Helgrind.hwlc_dr racy_many_times in
  let locations = Helgrind.locations h in
  let occurrences = Det.Report.occurrence_count (Helgrind.collector h) in
  Alcotest.(check bool) "many occurrences" true (occurrences > List.length locations);
  List.iter
    (fun ((r : Det.Report.t), n) ->
      Alcotest.(check bool) "count positive" true (n >= 1);
      Alcotest.(check bool) "block info attached" true (r.block <> None))
    locations

let test_suppression_file () =
  let body =
    "{\n  ignore-worker-writes\n  kind: Possible data race*\n  frame: worker (prog.c:*\n}\n"
  in
  let sups = Det.Suppression.parse_string body in
  Alcotest.(check int) "one suppression parsed" 1 (List.length sups);
  let vm = Engine.create ~config:Engine.default_config () in
  let h = Helgrind.create ~suppressions:sups Helgrind.hwlc_dr in
  Engine.add_tool vm (Helgrind.tool h);
  let _ = Engine.run vm racy_many_times in
  Alcotest.(check int) "all reports suppressed" 0 (Helgrind.location_count h);
  Alcotest.(check bool) "suppressed counter advanced" true
    (Det.Report.suppressed_count (Helgrind.collector h) > 0)

let test_suppression_roundtrip () =
  let s =
    Det.Suppression.make ~name:"n" ~kind_pattern:"Possible*"
      ~frame_patterns:[ "f (a.c:1)"; "*" ]
  in
  let parsed = Det.Suppression.parse_string (Det.Suppression.to_string s) in
  Alcotest.(check int) "roundtrip" 1 (List.length parsed)

let test_suppression_parse_error () =
  Alcotest.(check bool) "malformed file rejected" true
    (match Det.Suppression.parse_string "{\n x\n bad line\n}" with
    | exception Det.Suppression.Parse_error _ -> true
    | _ -> false)

(* glob matching properties *)
let qc_glob_literal =
  QCheck2.Test.make ~name:"glob: literal pattern matches only itself" ~count:200
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'e') (int_bound 8))
    (fun s ->
      Det.Suppression.(
        matches
          (make ~name:"t" ~kind_pattern:s ~frame_patterns:[])
          ~kind:s ~stack:[]))

let qc_glob_star_prefix =
  QCheck2.Test.make ~name:"glob: 'prefix*' matches any extension" ~count:200
    QCheck2.Gen.(
      pair (string_size ~gen:(char_range 'a' 'e') (int_bound 6))
        (string_size ~gen:(char_range 'a' 'e') (int_bound 6)))
    (fun (prefix, rest) ->
      Det.Suppression.(
        matches
          (make ~name:"t" ~kind_pattern:(prefix ^ "*") ~frame_patterns:[])
          ~kind:(prefix ^ rest) ~stack:[]))

let suite =
  ( "detector",
    [
      Alcotest.test_case "single thread silent" `Quick test_single_thread_silent;
      Alcotest.test_case "init+read-shared silent" `Quick test_init_then_read_shared_silent;
      Alcotest.test_case "unlocked write reported" `Quick test_unlocked_cross_thread_write_reported;
      Alcotest.test_case "consistent locking silent" `Quick test_consistent_locking_silent;
      Alcotest.test_case "different locks reported" `Quick test_lock_change_reported;
      Alcotest.test_case "common lock refinement" `Quick test_two_locks_refine_to_common;
      Alcotest.test_case "alloc resets shadow" `Quick test_alloc_resets_shadow;
      Alcotest.test_case "segment handoff silent" `Quick test_handoff_silent_with_segments;
      Alcotest.test_case "no segments: handoff reported" `Quick test_handoff_reported_without_segments;
      Alcotest.test_case "queue handoff reported" `Quick test_queue_handoff_reported;
      Alcotest.test_case "refcount FP under original" `Quick test_refcount_original_fp;
      Alcotest.test_case "refcount ok under HWLC" `Quick test_refcount_hwlc_silent;
      Alcotest.test_case "HWLC catches plain write" `Quick test_hwlc_still_catches_plain_write;
      Alcotest.test_case "figure 8 scenario" `Quick test_stringtest_scenario;
      Alcotest.test_case "rwlock untracked FP" `Quick test_rwlock_untracked_fp;
      Alcotest.test_case "rwlock tracked silent" `Quick test_rwlock_tracked_silent;
      Alcotest.test_case "read-mode lock no write protection" `Quick test_rdlock_does_not_protect_writes;
      Alcotest.test_case "dtor FP without DR" `Quick test_dtor_fp_without_annotation;
      Alcotest.test_case "dtor silent with DR" `Quick test_dtor_silent_with_annotation;
      Alcotest.test_case "original ignores annotations" `Quick test_annotation_ignored_by_original;
      Alcotest.test_case "race during destruction caught" `Quick test_access_during_destruction_still_caught;
      Alcotest.test_case "pure eraser flags init" `Quick test_pure_eraser_flags_initialisation;
      Alcotest.test_case "states allow init" `Quick test_states_allow_initialisation;
      Alcotest.test_case "schedule-dependent miss" `Quick test_false_negative_depends_on_schedule;
      Alcotest.test_case "benign race suppressed" `Quick test_benign_race_suppressed;
      Alcotest.test_case "report dedup + block info" `Quick test_dedup_by_signature;
      Alcotest.test_case "suppression file" `Quick test_suppression_file;
      Alcotest.test_case "suppression roundtrip" `Quick test_suppression_roundtrip;
      Alcotest.test_case "suppression parse error" `Quick test_suppression_parse_error;
      QCheck_alcotest.to_alcotest qc_glob_literal;
      QCheck_alcotest.to_alcotest qc_glob_star_prefix;
    ] )
