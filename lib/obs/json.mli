(** Minimal self-contained JSON: printer + parser.

    Used for metrics snapshots, Chrome trace export and warning
    provenance so the repo needs no external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
(** [int i] is [Num (float_of_int i)]. *)

val to_string : ?indent:int -> t -> string
(** Serialise.  [indent = 0] (default) is compact one-line output;
    [indent > 0] pretty-prints with that many spaces per level. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document.  Numbers become [Num] (floats,
    JavaScript-style); [\uXXXX] escapes are decoded as UTF-8 (BMP
    only). *)

(** Accessors, all total: *)

val member : string -> t -> t option
val to_list_opt : t -> t list option
val to_float_opt : t -> float option
val to_string_opt : t -> string option
