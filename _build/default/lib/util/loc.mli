(** Source locations for simulated programs.

    Every memory access and synchronisation operation carries a
    [Loc.t] naming the pseudo source position performing it, so race
    reports print Valgrind-style call stacks. *)

type t = { file : string; func : string; line : int }

val make : file:string -> func:string -> line:int -> t

val v : string -> string -> int -> t
(** [v file func line]. *)

val unknown : t

val file : t -> string
val func : t -> string
val line : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Renders as ["func (file:line)"]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
