(** Tree-walking interpreter: MiniC++ executes on the simulated VM.

    Objects live in VM memory with a vptr in slot 0, every field access
    is a VM access attributed to the source position performing it,
    destructor chains write the vptr at each level, and the
    [ca_deletor_single] wrapper inserted by {!Annotate} issues the
    [VALGRIND_HG_DESTRUCT] client request — so race reports carry
    MiniC++ file/line stacks, exactly like Helgrind over debug-built
    C++. *)

exception Runtime_error of string * Token.pos

type value = Vint of int | Vstr of string

type t

val create : Ast.program -> t

val run_main : t -> unit
(** Execute the program's [main]; call from inside a VM thread.
    Runtime errors ({!Runtime_error}) fail the simulated thread. *)

val output : t -> string list
(** Everything the program [print]ed, in order. *)

val compile :
  ?annotate:bool ->
  ?preprocessor:Preprocess.t ->
  file:string ->
  string ->
  t * string * int
(** The full Figure-3 pipeline on a source string: preprocess, parse,
    {!Check.check}, optionally {!Annotate.annotate}.  Returns the
    executable program, the (possibly annotated) pretty-printed source,
    and the number of deletes annotated.  [annotate] defaults to
    [true]; the default preprocessor knows the built-in headers
    ([valgrind/helgrind.h]). *)
