lib/minicc/token.ml: Fmt Printf
