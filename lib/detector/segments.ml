(** Thread segments and their happens-before graph (Figure 2).

    A thread's execution is cut into {e segments} at thread-create and
    thread-join operations.  Memory that is only ever touched by
    segments that are totally ordered in the segment graph is still
    exclusively owned even if the touching threads differ — the
    VisualThreads refinement that suppresses the producer/worker false
    positives of the thread-per-request pattern (Figure 10).

    Segment ids increase monotonically and a segment's parents are
    always older, so reachability queries can prune by id.  Queries are
    memoised: the graph is append-only and existing edges never
    change. *)

module Growvec = Raceguard_util.Growvec

type seg = int

type t = {
  parents : seg list Growvec.t;
  mutable current : int array;  (** tid -> active segment, [-1] = unseen *)
  last_of_thread : (int, seg) Hashtbl.t;  (** tid -> final segment at exit *)
  memo : (int, bool) Hashtbl.t;  (** (a * n + b) -> reachability *)
  tags : (int, seg) Hashtbl.t;  (** HAPPENS_BEFORE tag -> sender segment *)
}

let create () =
  {
    parents = Growvec.create ~dummy:[];
    current = Array.make 16 (-1);
    last_of_thread = Hashtbl.create 64;
    memo = Hashtbl.create 4096;
    tags = Hashtbl.create 64;
  }

let new_seg t parents = Growvec.push t.parents parents

let set_current t tid s =
  let n = Array.length t.current in
  if tid >= n then begin
    let a = Array.make (max (2 * n) (tid + 1)) (-1) in
    Array.blit t.current 0 a 0 n;
    t.current <- a
  end;
  t.current.(tid) <- s

(* the hottest query of the detector: one bounds check and a load *)
let seg_of t tid =
  if tid < Array.length t.current && Array.unsafe_get t.current tid >= 0 then
    Array.unsafe_get t.current tid
  else begin
    (* a thread we never saw start (e.g. tool attached mid-run) *)
    let s = new_seg t [] in
    set_current t tid s;
    s
  end

let on_thread_start t ~tid ~parent =
  match parent with
  | None -> ignore (seg_of t tid)
  | Some p ->
      (* split the parent's segment: parent continues in a fresh
         segment, the child starts in another; both descend from the
         parent's segment before the create. *)
      let ps = seg_of t p in
      let parent_cont = new_seg t [ ps ] in
      let child_start = new_seg t [ ps ] in
      set_current t p parent_cont;
      set_current t tid child_start

let on_thread_exit t ~tid = Hashtbl.replace t.last_of_thread tid (seg_of t tid)

(** HAPPENS_BEFORE annotation (§5 extension): remember the announcing
    thread's segment under [tag] and move the thread into a fresh
    segment — like the sender half of a create edge. *)
let on_happens_before t ~tid ~tag =
  let s = seg_of t tid in
  Hashtbl.replace t.tags tag s;
  set_current t tid (new_seg t [ s ])

(** HAPPENS_AFTER: the observing thread's next segment descends from
    both its own past and the announced segment — like a join edge. *)
let on_happens_after t ~tid ~tag =
  match Hashtbl.find_opt t.tags tag with
  | None -> ()  (* no matching BEFORE observed: no edge *)
  | Some sender ->
      set_current t tid (new_seg t [ seg_of t tid; sender ])

let on_join t ~joiner ~joined =
  let last =
    match Hashtbl.find_opt t.last_of_thread joined with
    | Some s -> s
    | None -> seg_of t joined
  in
  let j = new_seg t [ seg_of t joiner; last ] in
  set_current t joiner j

(** [happens_before t a b]: is segment [a] an ancestor of (or equal to)
    segment [b] in the segment graph? *)
let happens_before t a b =
  if a = b then true
  else if a > b then false
  else
    let key = (a * 1_000_003) + b in
    match Hashtbl.find_opt t.memo key with
    | Some r -> r
    | None ->
        let rec search = function
          | [] -> false
          | s :: rest ->
              if s = a then true
              else if s < a then search rest
              else search (List.rev_append (Growvec.get t.parents s) rest)
        in
        let r = search (Growvec.get t.parents b) in
        Hashtbl.replace t.memo key r;
        r

let count t = Growvec.length t.parents
