lib/cxxsim/refstring.ml: Char Raceguard_util Raceguard_vm String
