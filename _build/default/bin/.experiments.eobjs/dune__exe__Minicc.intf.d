bin/minicc.mli:
