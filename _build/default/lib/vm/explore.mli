(** Systematic schedule exploration (a CHESS-style stateless searcher).

    Upgrades §4.3's "repeated tests with different interleavings could
    help find such data-races" from probabilistic reruns to a
    depth-first search over the scheduler's decision tree, driven by
    {!Engine.policy.Scripted} prefixes and the engine's
    {!Engine.decision_log}.  Alternatives at early decision points are
    tried first (iterative-context-bounding flavour). *)

type 'a outcome = {
  found : 'a option;  (** the first witness the checker accepted *)
  runs : int;  (** executions performed *)
  exhausted : bool;
      (** the whole depth-bounded tree was covered (no witness exists
          within the first [max_depth] decision points) *)
  depth_limited : bool;
      (** some run had more decision points than [max_depth] *)
  witness_script : int array option;  (** decision prefix reproducing it *)
}

val search :
  ?max_depth:int ->
  ?max_runs:int ->
  (policy:Engine.policy -> (unit -> Engine.t) * (Engine.t -> 'a option)) ->
  'a outcome
(** [search instantiate] repeatedly calls [instantiate ~policy] to
    build a fresh run: the returned [(execute, check)] pair runs the
    program (returning the engine, so its decision log can be read) and
    inspects the result — return [Some w] to stop the search with
    witness [w].  The caller must attach fresh tools on every call.
    Defaults: [max_depth = 32], [max_runs = 2000]. *)
