(* Tests for the MiniC++ pipeline: lexer, parser, preprocessor, checks,
   annotation pass, pretty-printer roundtrip, and the interpreter. *)

module M = Raceguard_minicc
module Vm = Raceguard_vm
module Engine = Vm.Engine
module Det = Raceguard_detector

(* run a program source, return (interp output, thread failures) *)
let exec ?(seed = 1) ?(annotate = true) src =
  let interp, _pretty, _n = M.Interp.compile ~annotate ~file:"t.mcc" src in
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let outcome = Engine.run vm (fun () -> M.Interp.run_main interp) in
  (M.Interp.output interp, outcome.failures)

let exec_ok ?seed ?annotate src =
  let out, failures = exec ?seed ?annotate src in
  (match failures with
  | [] -> ()
  | (_, name, e) :: _ -> Alcotest.failf "thread %s raised %s" name (Printexc.to_string e));
  out

(* --- lexer -------------------------------------------------------------- *)

let test_lexer_tokens () =
  let toks = M.Lexer.tokens ~file:"x" "fn f() { return 1 + 2; } // comment" in
  let kinds = List.map (fun t -> t.M.Token.kind) toks in
  Alcotest.(check int) "token count" 12 (List.length kinds);
  Alcotest.(check bool) "starts with fn" true (List.hd kinds = M.Token.KW_fn)

let test_lexer_positions () =
  let toks = M.Lexer.tokens ~file:"x" "fn\n  f" in
  match toks with
  | [ fn_tok; f_tok; _eof ] ->
      Alcotest.(check int) "fn line" 1 fn_tok.M.Token.pos.line;
      Alcotest.(check int) "f line" 2 f_tok.M.Token.pos.line;
      Alcotest.(check int) "f col" 3 f_tok.M.Token.pos.col
  | _ -> Alcotest.fail "unexpected token count"

let test_lexer_string_escapes () =
  let toks = M.Lexer.tokens ~file:"x" {|fn f() { print_str("a\nb\"c"); }|} in
  let strings =
    List.filter_map (fun t -> match t.M.Token.kind with M.Token.STRING s -> Some s | _ -> None) toks
  in
  Alcotest.(check (list string)) "escapes decoded" [ "a\nb\"c" ] strings

let test_lexer_comments_and_errors () =
  let toks = M.Lexer.tokens ~file:"x" "/* multi \n line */ 42" in
  Alcotest.(check int) "comment skipped" 2 (List.length toks);
  Alcotest.(check bool) "bad char rejected" true
    (match M.Lexer.tokens ~file:"x" "fn f() { @ }" with
    | exception M.Lexer.Error _ -> true
    | _ -> false);
  Alcotest.(check bool) "unterminated string rejected" true
    (match M.Lexer.tokens ~file:"x" "\"oops" with
    | exception M.Lexer.Error _ -> true
    | _ -> false)

(* --- parser ------------------------------------------------------------- *)

let parse src = M.Parser.parse_string ~file:"t.mcc" src

let test_parser_precedence () =
  let p = parse "fn main() { var x = 1 + 2 * 3 == 7 && 1 < 2; return x; }" in
  (* pretty-print normalises; reparse must agree *)
  let printed = M.Pretty.program p in
  let p2 = parse printed in
  Alcotest.(check string) "stable under pretty/reparse" printed (M.Pretty.program p2)

let test_parser_errors () =
  let rejects src =
    match parse src with exception M.Parser.Error _ -> true | _ -> false
  in
  Alcotest.(check bool) "missing semicolon" true (rejects "fn main() { return 1 }");
  Alcotest.(check bool) "bad assignment target" true (rejects "fn main() { 1 = 2; }");
  Alcotest.(check bool) "unclosed block" true (rejects "fn main() { ");
  Alcotest.(check bool) "dtor name mismatch" true
    (rejects "class A { fn ~B() { } } fn main() { return 0; }")

let test_parser_class () =
  let p =
    parse
      "class A { var x; fn ~A() { this.x = 0; } fn get() { return this.x; } }\n\
       class B : A { var y; }\n\
       fn main() { return 0; }"
  in
  match M.Ast.classes p with
  | [ a; b ] ->
      Alcotest.(check string) "name" "A" a.M.Ast.cls_name;
      Alcotest.(check (list string)) "fields" [ "x" ] a.M.Ast.cls_fields;
      Alcotest.(check bool) "dtor present" true (a.M.Ast.cls_dtor <> None);
      Alcotest.(check int) "methods" 1 (List.length a.M.Ast.cls_methods);
      Alcotest.(check (option string)) "parent" (Some "A") b.M.Ast.cls_parent
  | l -> Alcotest.failf "expected 2 classes, got %d" (List.length l)

(* pretty-print/reparse roundtrip over a corpus of programs *)
let corpus =
  [
    "fn main() { return 0; }";
    "fn main() { var x = -5; if (x < 0) { x = 0 - x; } return x; }";
    "fn main() { var i = 0; while (i < 10) { i = i + 1; } return i; }";
    "fn f(a, b) { return a % b; } fn main() { return f(17, 5); }";
    "class P { var v; } fn main() { var p = new P(); p.v = 3; var r = p.v; delete p; return r; }";
    "fn w(x) { return x; } fn main() { var t = spawn w(1); join(t); return 0; }";
    "fn main() { var m = mutex(\"m\"); lock (m) { yield(); } return 0; }";
    "fn main() { if (1) { return 1; } else { if (0) { return 2; } } return 3; }";
    "fn main() { var x = 1 && 0 || !0; var y = (1 + 2) * (3 - 4); return x + y; }";
  ]

let test_roundtrip_corpus () =
  List.iter
    (fun src ->
      let p = parse src in
      let printed = M.Pretty.program p in
      let p2 = parse printed in
      Alcotest.(check string)
        ("roundtrip: " ^ src)
        printed (M.Pretty.program p2))
    corpus

(* --- preprocessor --------------------------------------------------------- *)

let test_preprocess_include () =
  let pp = M.Preprocess.create () in
  M.Preprocess.register pp ~name:"lib.h" ~source:"fn helper() { return 7; }";
  let ast = M.Preprocess.parse pp ~file:"t.mcc" "#include \"lib.h\"\nfn main() { return helper(); }" in
  Alcotest.(check int) "two functions after splice" 2 (List.length (M.Ast.functions ast))

let test_preprocess_missing_header () =
  let pp = M.Preprocess.create () in
  Alcotest.(check bool) "missing header rejected" true
    (match M.Preprocess.parse pp ~file:"t" "#include \"nope.h\"\nfn main() { return 0; }" with
    | exception M.Preprocess.Error _ -> true
    | _ -> false)

let test_preprocess_include_once () =
  let pp = M.Preprocess.create () in
  M.Preprocess.register pp ~name:"a.h" ~source:"#include \"b.h\"\nfn fa() { return 1; }";
  M.Preprocess.register pp ~name:"b.h" ~source:"#include \"a.h\"\nfn fb() { return 2; }";
  let ast =
    M.Preprocess.parse pp ~file:"t"
      "#include \"a.h\"\n#include \"b.h\"\nfn main() { return fa() + fb(); }"
  in
  Alcotest.(check int) "cyclic includes resolved once" 3 (List.length (M.Ast.functions ast))

(* --- semantic checks -------------------------------------------------------- *)

let check_rejects src =
  let ast = parse src in
  match M.Check.check ast with exception M.Check.Error _ -> true | _ -> false

let test_checker () =
  Alcotest.(check bool) "undefined variable" true
    (check_rejects "fn main() { return nope; }");
  Alcotest.(check bool) "unknown function" true
    (check_rejects "fn main() { return nope(); }");
  Alcotest.(check bool) "arity mismatch" true
    (check_rejects "fn f(a) { return a; } fn main() { return f(1, 2); }");
  Alcotest.(check bool) "duplicate class" true
    (check_rejects "class A { } class A { } fn main() { return 0; }");
  Alcotest.(check bool) "unknown parent" true
    (check_rejects "class A : Z { } fn main() { return 0; }");
  Alcotest.(check bool) "this outside method" true
    (check_rejects "fn main() { return this.x; }");
  Alcotest.(check bool) "missing main" true (check_rejects "fn helper() { return 0; }");
  Alcotest.(check bool) "spawn arity" true
    (check_rejects "fn w(a) { return a; } fn main() { var t = spawn w(); join(t); return 0; }");
  Alcotest.(check bool) "duplicate field in hierarchy" true
    (check_rejects "class A { var x; } class B : A { var x; } fn main() { return 0; }");
  Alcotest.(check bool) "builtin shadowing" true
    (check_rejects "fn print(x) { return x; } fn main() { return 0; }")

(* --- annotation pass ---------------------------------------------------------- *)

let test_annotate_counts_and_idempotent () =
  let src =
    "class A { var x; }\n\
     fn main() { var p = new A(); var q = new A(); delete p; delete q; return 0; }"
  in
  let ast = parse src in
  let ast1, n1 = M.Annotate.annotate ast in
  Alcotest.(check int) "two deletes annotated" 2 n1;
  Alcotest.(check int) "no raw deletes remain" 0 (M.Annotate.unannotated_deletes ast1);
  let _, n2 = M.Annotate.annotate ast1 in
  Alcotest.(check int) "idempotent" 0 n2;
  Alcotest.(check int) "raw source has raw deletes" 2 (M.Annotate.unannotated_deletes ast)

let test_annotate_pretty_shows_figure4 () =
  let ast = parse "class A { var x; } fn g(p) { delete p; return 0; } fn main() { var p = new A(); g(p); return 0; }" in
  let ast', _ = M.Annotate.annotate ast in
  let printed = M.Pretty.program ast' in
  Alcotest.(check bool) "deletor wrapper visible" true
    (let needle = "delete ca_deletor_single(p);" in
     let rec contains i =
       i + String.length needle <= String.length printed
       && (String.sub printed i (String.length needle) = needle || contains (i + 1))
     in
     contains 0)

(* --- interpreter --------------------------------------------------------------- *)

let test_interp_arithmetic () =
  let out =
    exec_ok
      "fn main() { print(2 + 3 * 4); print(10 / 3); print(10 % 3); print(0 - 4); \
       print(1 < 2); print(2 <= 1); print(5 == 5); print(5 != 5); return 0; }"
  in
  Alcotest.(check (list string)) "arithmetic" [ "14"; "3"; "1"; "-4"; "1"; "0"; "1"; "0" ] out

let test_interp_short_circuit () =
  (* the right operand of && must not run when the left is false *)
  let out =
    exec_ok
      "fn boom() { print(999); return 1; }\n\
       fn main() { var x = 0 && boom(); var y = 1 || boom(); print(x); print(y); return 0; }"
  in
  Alcotest.(check (list string)) "short circuit" [ "0"; "1" ] out

let test_interp_control_flow () =
  let out =
    exec_ok
      "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
       fn main() { print(fib(12)); var i = 0; var s = 0; while (i < 5) { s = s + i; i = i + 1; } print(s); return 0; }"
  in
  Alcotest.(check (list string)) "fib + loop" [ "144"; "10" ] out

let test_interp_objects_and_dispatch () =
  let out =
    exec_ok
      "class Animal { var legs; fn noise() { return 1; } fn describe() { return this.noise() * 100 + this.legs; } }\n\
       class Dog : Animal { fn noise() { return 2; } }\n\
       fn main() {\n\
         var a = new Animal(); a.legs = 2;\n\
         var d = new Dog(); d.legs = 4;\n\
         print(a.describe()); print(d.describe());\n\
         delete a; delete d; return 0;\n\
       }"
  in
  Alcotest.(check (list string)) "virtual dispatch" [ "102"; "204" ] out

let test_interp_threads () =
  let out =
    exec_ok ~seed:5
      "fn worker(cell, m, n) {\n\
         var i = 0;\n\
         while (i < n) { lock (m) { store(cell, load(cell) + 1); } i = i + 1; }\n\
         return 0;\n\
       }\n\
       fn main() {\n\
         var cell = alloc(1); var m = mutex(\"m\");\n\
         var t1 = spawn worker(cell, m, 10);\n\
         var t2 = spawn worker(cell, m, 10);\n\
         join(t1); join(t2);\n\
         print(load(cell)); free(cell); return 0;\n\
       }"
  in
  Alcotest.(check (list string)) "threads with mutex" [ "20" ] out

let test_interp_rwlock_and_sem () =
  let out =
    exec_ok ~seed:7
      "fn reader(rw, cell, results) {\n\
         rdlock(rw); var v = load(cell); rw_unlock(rw);\n\
         sem_post(results);\n\
         return v;\n\
       }\n\
       fn main() {\n\
         var rw = rwlock(\"rw\"); var cell = alloc(1);\n\
         var results = sem(\"results\", 0);\n\
         wrlock(rw); store(cell, 5); rw_unlock(rw);\n\
         var t1 = spawn reader(rw, cell, results);\n\
         var t2 = spawn reader(rw, cell, results);\n\
         sem_wait(results); sem_wait(results);\n\
         join(t1); join(t2);\n\
         wrlock(rw); print(load(cell)); rw_unlock(rw);\n\
         free(cell); return 0;\n\
       }"
  in
  Alcotest.(check (list string)) "rwlock/sem program" [ "5" ] out

let test_interp_cond_handshake () =
  let out =
    exec_ok ~seed:9
      "fn waiter(m, cv, flag, cell) {\n\
         mutex_lock(m);\n\
         while (load(flag) == 0) { cond_wait(cv, m); }\n\
         print(load(cell));\n\
         mutex_unlock(m);\n\
         return 0;\n\
       }\n\
       fn main() {\n\
         var m = mutex(\"m\"); var cv = cond(\"cv\");\n\
         var flag = alloc(1); var cell = alloc(1);\n\
         var t = spawn waiter(m, cv, flag, cell);\n\
         sleep(5);\n\
         mutex_lock(m); store(cell, 77); store(flag, 1); cond_signal(cv); mutex_unlock(m);\n\
         join(t); return 0;\n\
       }"
  in
  Alcotest.(check (list string)) "condvar handshake" [ "77" ] out

let test_interp_runtime_errors () =
  let fails src =
    let _, failures = exec src in
    failures <> []
  in
  Alcotest.(check bool) "null deref" true
    (fails "class A { var x; } fn main() { var p = null; return p.x; }");
  Alcotest.(check bool) "division by zero" true (fails "fn main() { return 1 / 0; }");
  Alcotest.(check bool) "bad vptr after free" true
    (fails
       "class A { var x; } fn main() { var p = new A(); delete p; delete p; return 0; }")

let test_interp_dtor_order () =
  let out =
    exec_ok
      "class A { var x; fn ~A() { print(1); } }\n\
       class B : A { var y; fn ~B() { print(2); } }\n\
       fn main() { var p = new B(); delete p; return 0; }"
  in
  Alcotest.(check (list string)) "derived dtor first" [ "2"; "1" ] out

let test_annotation_preserves_semantics () =
  let src =
    "class A { var x; fn ~A() { print(7); } }\n\
     fn main() { var p = new A(); p.x = 3; print(p.x); delete p; return 0; }"
  in
  Alcotest.(check (list string)) "same output with and without annotation"
    (exec_ok ~annotate:false src) (exec_ok ~annotate:true src)

(* end-to-end: the annotated build removes destructor FPs, keeps races *)
let racy_src =
  "class Shared { var count; }\n\
   fn worker(p) { p.count = p.count + 1; return 0; }\n\
   fn main() {\n\
     var p = new Shared(); p.count = 0;\n\
     var t1 = spawn worker(p); var t2 = spawn worker(p);\n\
     join(t1); join(t2);\n\
     delete p; return 0;\n\
   }"

let locations ~annotate src =
  let interp, _, _ = M.Interp.compile ~annotate ~file:"t.mcc" src in
  let h = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  let vm = Engine.create ~config:{ Engine.default_config with seed = 2 } () in
  Engine.add_tool vm (Det.Helgrind.tool h);
  let outcome = Engine.run vm (fun () -> M.Interp.run_main interp) in
  assert (outcome.failures = []);
  Det.Helgrind.locations h

let test_interp_benign_race_builtin () =
  let src =
    "fn worker(cell) { store(cell, 2); return 0; }\n\
     fn main() {\n\
       var cell = alloc(1);\n\
       benign_race(cell, 1);\n\
       store(cell, 1);\n\
       var t = spawn worker(cell);\n\
       store(cell, 3);\n\
       join(t); free(cell); return 0;\n\
     }"
  in
  Alcotest.(check int) "benign_race silences the cell" 0
    (List.length (locations ~annotate:true src))

let test_detector_still_sees_real_race () =
  let locs = locations ~annotate:true racy_src in
  Alcotest.(check bool) "real race reported in annotated build" true
    (List.exists
       (fun ((r : Det.Report.t), _) ->
         List.exists (fun l -> Raceguard_util.Loc.func l = "worker") r.stack)
       locs)

let test_annotation_removes_only_dtor_reports () =
  let without = locations ~annotate:false racy_src in
  let with_ = locations ~annotate:true racy_src in
  let dtor_reports locs =
    List.length
      (List.filter
         (fun ((r : Det.Report.t), _) ->
           List.exists
             (fun l ->
               let f = Raceguard_util.Loc.func l in
               String.length f > 2 && String.contains f '~')
             r.stack)
         locs)
  in
  Alcotest.(check bool) "uninstrumented has dtor reports" true (dtor_reports without > 0);
  Alcotest.(check int) "instrumented has none" 0 (dtor_reports with_);
  Alcotest.(check bool) "fewer locations overall" true (List.length with_ < List.length without)

let suite =
  ( "minicc",
    [
      Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
      Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
      Alcotest.test_case "lexer string escapes" `Quick test_lexer_string_escapes;
      Alcotest.test_case "lexer comments/errors" `Quick test_lexer_comments_and_errors;
      Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
      Alcotest.test_case "parser errors" `Quick test_parser_errors;
      Alcotest.test_case "parser classes" `Quick test_parser_class;
      Alcotest.test_case "pretty/reparse corpus" `Quick test_roundtrip_corpus;
      Alcotest.test_case "preprocess include" `Quick test_preprocess_include;
      Alcotest.test_case "preprocess missing header" `Quick test_preprocess_missing_header;
      Alcotest.test_case "preprocess include-once" `Quick test_preprocess_include_once;
      Alcotest.test_case "semantic checks" `Quick test_checker;
      Alcotest.test_case "annotate: count/idempotent" `Quick test_annotate_counts_and_idempotent;
      Alcotest.test_case "annotate: figure 4 output" `Quick test_annotate_pretty_shows_figure4;
      Alcotest.test_case "interp arithmetic" `Quick test_interp_arithmetic;
      Alcotest.test_case "interp short circuit" `Quick test_interp_short_circuit;
      Alcotest.test_case "interp control flow" `Quick test_interp_control_flow;
      Alcotest.test_case "interp virtual dispatch" `Quick test_interp_objects_and_dispatch;
      Alcotest.test_case "interp threads" `Quick test_interp_threads;
      Alcotest.test_case "interp rwlock+sem" `Quick test_interp_rwlock_and_sem;
      Alcotest.test_case "interp condvar" `Quick test_interp_cond_handshake;
      Alcotest.test_case "interp benign_race" `Quick test_interp_benign_race_builtin;
      Alcotest.test_case "interp runtime errors" `Quick test_interp_runtime_errors;
      Alcotest.test_case "interp dtor order" `Quick test_interp_dtor_order;
      Alcotest.test_case "annotation preserves semantics" `Quick test_annotation_preserves_semantics;
      Alcotest.test_case "detector sees real race" `Quick test_detector_still_sees_real_race;
      Alcotest.test_case "annotation removes dtor reports" `Quick test_annotation_removes_only_dtor_reports;
    ] )
