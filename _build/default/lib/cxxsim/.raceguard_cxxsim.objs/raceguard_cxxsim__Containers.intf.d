lib/cxxsim/containers.mli: Allocator
