(** Multicore cell pool: map over an array of independent
    deterministic cells using work-stealing across OCaml 5 domains.

    Contract: [map_cells ~domains f cells] returns exactly
    [Array.map f cells] — same slots, same values — for any [domains].
    Cells must be independent (no shared mutable state outside the
    domain-local caches; each cell builds its own VM/tool instances)
    and are executed at most once each.  If any cell raises, all cells
    still run, then the exception of the lowest-index failing cell is
    re-raised with its backtrace. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count () - 1], never below 1 — what
    [domains = 0] resolves to everywhere a [--domains] flag exists. *)

val resolve : int -> int
(** [resolve d] is [recommended ()] when [d <= 0], else [d]. *)

type stats = {
  st_domains : int;  (** workers actually used (capped by cell count) *)
  st_cells : int;
  st_steals : int;  (** cells executed by a non-home worker *)
}

val map_cells : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [domains <= 1] (after {!resolve}) runs sequentially in the calling
    domain — byte-for-byte today's single-domain path. *)

val map_cells_stats : domains:int -> ('a -> 'b) -> 'a array -> 'b array * stats

val steal_rounds : int
(** Bounded steal rounds per idle sweep before backing off. *)
