lib/vm/thread_pool.mli:
