lib/minicc/preprocess.ml: Hashtbl Lexer List Parser String Token
