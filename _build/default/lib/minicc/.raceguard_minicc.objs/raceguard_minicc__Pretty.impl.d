lib/minicc/pretty.ml: Ast Buffer Fmt List Printf String
