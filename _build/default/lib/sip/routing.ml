(** The routing table: next-hop selection, guarded by a POSIX
    read-write lock.

    The original Helgrind had {e no} support for
    [pthread_rwlock_t] — "an extension for read-write locks that is
    presented in the original Eraser algorithm is not implemented in
    Helgrind" (§2.3.2) — so every access to rwlock-protected data
    looked unprotected and was reported.  Implementing the corrected
    hardware-bus-lock model required read-write lock-sets, after which
    "support for the corresponding POSIX API could be added easily"
    (§3.1): the HWLC configuration understands these events and the
    warnings disappear.

    Workers take the lock in read mode on every routed request; a
    route-refresh pass (run from the housekeeping timer) takes it in
    write mode. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Refstring = Raceguard_cxxsim.Refstring

let lc func line = Loc.v "routing.cpp" ("RouteTable::" ^ func) line

let max_routes = 8

type t = {
  rwlock : Api.Rwlock.t;
  base : int;  (** max_routes × 3 words: [domain_hash; next_hop; cost] *)
  default_gw : Refstring.t;  (** shared gateway name *)
  mutable refreshes : int;
}

let entry t i = t.base + (3 * i)

let create ~domains =
  let loc = lc "RouteTable" 30 in
  let t =
    {
      rwlock = Api.Rwlock.create ~loc "routing.rwlock";
      base = Api.alloc ~loc (max_routes * 3);
      default_gw = Refstring.create ~loc "gw1.core.example.net";
      refreshes = 0;
    }
  in
  List.iteri
    (fun i d ->
      if i < max_routes then begin
        Api.write ~loc:(lc "RouteTable" 41) (entry t i) (Registrar.hash_string d);
        Api.write ~loc:(lc "RouteTable" 42) (entry t i + 1) (100 + i);
        Api.write ~loc:(lc "RouteTable" 43) (entry t i + 2) 10
      end)
    domains;
  t

(** Select the next hop for a domain: read-locked table scan plus a
    copy of the shared gateway banner. *)
let next_hop t ~domain =
  let loc = lc "nextHop" 52 in
  Api.with_frame loc @@ fun () ->
  Api.Rwlock.with_rdlock ~loc t.rwlock @@ fun () ->
  let key = Registrar.hash_string domain in
  let rec scan i =
    if i >= max_routes then None
    else
      let h = Api.read ~loc:(lc "nextHop" 58) (entry t i) in
      if h = key then begin
        let hop = Api.read ~loc:(lc "nextHop" 60) (entry t i + 1) in
        let cost = Api.read ~loc:(lc "nextHop" 61) (entry t i + 2) in
        let gw = Refstring.copy t.default_gw in
        let name = Refstring.to_string gw in
        Refstring.release gw;
        Some (hop, cost, name)
      end
      else scan (i + 1)
  in
  scan 0

(** Periodic refresh: write-locked cost update. *)
let refresh t =
  let loc = lc "refresh" 73 in
  Api.with_frame loc @@ fun () ->
  Api.Rwlock.with_wrlock ~loc t.rwlock @@ fun () ->
  t.refreshes <- t.refreshes + 1;
  for i = 0 to max_routes - 1 do
    let cost = Api.read ~loc:(lc "refresh" 78) (entry t i + 2) in
    Api.write ~loc:(lc "refresh" 79) (entry t i + 2) ((cost mod 97) + 1)
  done

let refreshes t = t.refreshes
