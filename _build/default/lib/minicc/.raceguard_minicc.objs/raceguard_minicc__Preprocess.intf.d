lib/minicc/preprocess.mli: Ast Token
