(** Time formatting with a static buffer — bug B5 (§4.1.3): like
    [ctime]/[localtime], "return[s] a pointer to static data and hence
    [is] NOT thread-safe". *)

type t

val buf_len : int

val create : unit -> t
(** Allocate the C library's static storage. *)

val ctime : t -> int
(** Format the current virtual time into the static buffer — unlocked
    writes to shared static data — and return its address. *)

val read_formatted : t -> int -> string
(** Read the formatted text back (more racy accesses, reader side). *)
