(** Retransmission / housekeeping timers.

    Workers schedule [TimerTask] objects into a locked list; a timer
    thread fires due tasks and deletes them — yet another shared-object
    delete site (the task was created by a worker, is deleted by the
    timer thread), plus a periodic housekeeping callback used for
    registrar expiry.

    With a [resend] callback the wheel implements RFC-3261-style
    response retransmission: a fired [RetransmitTimer] asks the server
    to resend the transaction's final response and, while the callback
    keeps returning [true] and the attempt budget lasts, reschedules
    itself with exponentially backed-off delays ({!Backoff}).  The
    receiving side cancels the timer with {!cancel} when the ACK
    arrives — the classic cancellation-racing-with-reply window. *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api
module Obj_model = Raceguard_cxxsim.Object_model
module Metrics = Raceguard_obs.Metrics

let lc func line = Loc.v "timer_wheel.cpp" ("TimerWheel::" ^ func) line

let m_resend = Metrics.counter "sip.resilience.timer_resend"
let m_cancelled = Metrics.counter "sip.resilience.timer_cancelled"
let m_oom_recovered = Metrics.counter "sip.resilience.timer_alloc_failure_recovered"

let max_attempts = 5

(* class TimerTask { int due; int kind; }
   class RetransmitTimer : TimerTask { int attempts; int txn_key; } *)
let timer_task_class =
  Obj_model.define ~name:"TimerTask" ~fields:[ "due"; "kind" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"timer_wheel.cpp" ~base_line:19 cls obj ~strings:[]
        ~ints:[ "due"; "kind" ])
    ()

let retransmit_timer_class =
  Obj_model.define ~parent:timer_task_class ~name:"RetransmitTimer"
    ~fields:[ "attempts"; "txn_key" ]
    ~dtor_body:(fun cls obj ->
      Obj_model.scrub ~file:"timer_wheel.cpp" ~base_line:27 cls obj ~strings:[]
        ~ints:[ "attempts"; "txn_key" ])
    ()

type t = {
  mutex : Api.Mutex.t;
  pending : Raceguard_cxxsim.Containers.Vector.t;  (** task addresses *)
  stop_flag : int;
  annotate : bool;
  housekeeping : unit -> unit;
  resend : (txn_key:int -> attempt:int -> bool) option;
      (** [resend ~txn_key ~attempt] retransmits the transaction's
          final response; [true] = keep the timer armed *)
  backoff : Backoff.params;
  recover_alloc_failure : bool;
      (** timer thread swallows injected allocation failures instead of
          dying (the resilient server's behaviour) *)
  mutable thread : int;
  mutable fired : int;
  mutable resent : int;
  mutable cancelled : int;
}

let create ~alloc ~annotate ?resend ?(backoff = Backoff.default)
    ?(recover_alloc_failure = false) ~housekeeping () =
  {
    mutex = Api.Mutex.create ~loc:(lc "TimerWheel" 40) "timer.mutex";
    pending = Raceguard_cxxsim.Containers.Vector.create alloc;
    stop_flag = Api.alloc ~loc:(lc "TimerWheel" 42) 1;
    annotate;
    housekeeping;
    resend;
    backoff;
    recover_alloc_failure;
    thread = -1;
    fired = 0;
    resent = 0;
    cancelled = 0;
  }

let schedule_attempt t ~txn_key ~delay ~attempt =
  let loc = lc "schedule" 52 in
  Api.with_frame loc @@ fun () ->
  let task =
    Obj_model.new_ ~loc retransmit_timer_class ~init:(fun obj ->
        let cls = retransmit_timer_class in
        Obj_model.set ~loc cls obj "due" (Api.now () + delay);
        Obj_model.set ~loc cls obj "kind" 1;
        Obj_model.set ~loc cls obj "attempts" attempt;
        Obj_model.set ~loc cls obj "txn_key" txn_key)
  in
  Api.Mutex.with_lock ~loc t.mutex (fun () ->
      Raceguard_cxxsim.Containers.Vector.push_back t.pending task)

(** Schedule a retransmission timer for a transaction. *)
let schedule_retransmit t ~txn_key ~delay = schedule_attempt t ~txn_key ~delay ~attempt:0

(** Disarm every pending timer for [txn_key] (the reply — an ACK —
    arrived).  Returns how many were cancelled.  Unlinks under the
    mutex, deletes outside it, mirroring every other delete site. *)
let cancel t ~txn_key =
  let loc = lc "cancel" 58 in
  Api.with_frame loc @@ fun () ->
  let module V = Raceguard_cxxsim.Containers.Vector in
  let victims = ref [] in
  Api.Mutex.with_lock ~loc t.mutex (fun () ->
      let n = V.size t.pending in
      for i = 0 to n - 1 do
        let task = V.get t.pending i in
        if task <> 0 && Obj_model.get ~loc retransmit_timer_class task "txn_key" = txn_key
        then begin
          victims := task :: !victims;
          V.set t.pending i 0
        end
      done);
  List.iter
    (fun task ->
      t.cancelled <- t.cancelled + 1;
      Metrics.incr m_cancelled;
      Obj_model.delete_ ~loc:(lc "cancel" 64) ~annotate:t.annotate retransmit_timer_class task)
    !victims;
  List.length !victims

let fire_due t =
  let loc = lc "fireDue" 66 in
  Api.with_frame loc @@ fun () ->
  let module V = Raceguard_cxxsim.Containers.Vector in
  let now = Api.now () in
  let due = ref [] in
  Api.Mutex.with_lock ~loc t.mutex (fun () ->
      (* collect due tasks; compact the vector in place *)
      let n = V.size t.pending in
      let keep = ref [] in
      for i = 0 to n - 1 do
        let task = V.get t.pending i in
        if task <> 0 then begin
          if Obj_model.get ~loc retransmit_timer_class task "due" <= now then
            due := task :: !due
          else keep := task :: !keep
        end
      done;
      let keep = List.rev !keep in
      List.iteri (fun i task -> V.set t.pending i task) keep;
      for i = List.length keep to n - 1 do
        V.set t.pending i 0
      done);
  List.iter
    (fun task ->
      t.fired <- t.fired + 1;
      let txn_key = Obj_model.get ~loc retransmit_timer_class task "txn_key" in
      let attempts = Obj_model.get ~loc retransmit_timer_class task "attempts" in
      (* retransmit, then delete the worker-created task in the timer
         thread (the cross-thread delete site) *)
      (match t.resend with
      | None -> ()
      | Some resend ->
          let attempt = attempts + 1 in
          let keep_armed = resend ~txn_key ~attempt in
          if keep_armed then begin
            t.resent <- t.resent + 1;
            Metrics.incr m_resend;
            if attempt < max_attempts then
              schedule_attempt t ~txn_key ~attempt
                ~delay:(Backoff.delay t.backoff ~seed:txn_key ~attempt)
          end);
      Obj_model.delete_ ~loc:(lc "fireDue" 90) ~annotate:t.annotate retransmit_timer_class task)
    !due

let run t () =
  Api.with_frame (lc "run" 94) @@ fun () ->
  let tick () =
    try
      fire_due t;
      t.housekeeping ()
    with Raceguard_faults.Injector.Out_of_memory when t.recover_alloc_failure ->
      (* injected bad_alloc inside timer bookkeeping: drop this tick's
         work and keep the timer thread alive *)
      Metrics.incr m_oom_recovered
  in
  while Api.read ~loc:(lc "run" 95) t.stop_flag = 0 do
    Api.sleep 15;
    tick ()
  done;
  tick ()

let start t = t.thread <- Api.spawn ~loc:(lc "start" 102) ~name:"timer-wheel" (run t)
let stop t = ignore (Api.atomic_rmw ~loc:(lc "stop" 103) t.stop_flag (fun _ -> 1))
let join t = if t.thread >= 0 then Api.join ~loc:(lc "join" 104) t.thread
let fired t = t.fired
let resent t = t.resent
let cancelled t = t.cancelled
