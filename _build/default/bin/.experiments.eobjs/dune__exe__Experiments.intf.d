bin/experiments.mli:
