(** Semantic checks for MiniC++ programs.

    Performed after parsing and before annotation/interpretation:
    - class hierarchy is acyclic and parents exist;
    - no duplicate class/function/field names;
    - variables are defined before use; [this] only inside methods;
    - called functions exist (or are builtins) and arities match;
    - spawned functions exist and arities match;
    - field names exist in {e some} class (MiniC++ objects are
      dynamically classed, so field access is checked precisely at
      runtime; statically we catch misspellings that match no class).

    {!check_all} accumulates {e every} violation with its position (the
    lint-friendly entry point); {!check} raises on the first one, in
    the same walk order, for the build pipeline. *)

open Ast

exception Error of string * Token.pos

let builtins =
  (* name, arity *)
  [
    ("mutex", 1);
    ("mutex_lock", 1);
    ("mutex_unlock", 1);
    ("rwlock", 1);
    ("rdlock", 1);
    ("wrlock", 1);
    ("rw_unlock", 1);
    ("cond", 1);
    ("cond_wait", 2);
    ("cond_signal", 1);
    ("cond_broadcast", 1);
    ("sem", 2);
    ("sem_wait", 1);
    ("sem_post", 1);
    ("benign_race", 2);
    ("hb_before", 1);
    ("hb_after", 1);
    ("join", 1);
    ("yield", 0);
    ("sleep", 1);
    ("now", 0);
    ("self", 0);
    ("print", 1);
    ("print_str", 1);
    ("alloc", 1);
    ("free", 1);
    ("load", 1);
    ("store", 2);
    ("atomic_inc", 1);
    ("atomic_dec", 1);
    ("hg_destruct", 2);
    ("ca_deletor_single", 1);
    ("random", 1);
  ]

(** Walk the whole program and collect every semantic violation, in
    source-walk order (the head is what {!check} raises). *)
let check_all (p : program) : (string * Token.pos) list =
  let diags = ref [] in
  let err pos fmt = Fmt.kstr (fun m -> diags := (m, pos) :: !diags) fmt in
  let classes = classes p and functions = functions p in
  (* duplicate / existence checks *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.cls_name then err c.cls_pos "duplicate class %s" c.cls_name;
      Hashtbl.replace seen c.cls_name ())
    classes;
  let fseen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem fseen f.fn_name then err f.fn_pos "duplicate function %s" f.fn_name;
      if List.mem_assoc f.fn_name builtins then
        err f.fn_pos "function %s shadows a builtin" f.fn_name;
      Hashtbl.replace fseen f.fn_name ())
    functions;
  (* hierarchy — a cycle or missing parent is reported once, then the
     chain walk stops (it cannot make progress) *)
  let rec ancestors c acc =
    match c.cls_parent with
    | None -> ()
    | Some pname -> (
        if List.mem pname acc then err c.cls_pos "inheritance cycle through %s" pname
        else
          match find_class p pname with
          | None -> err c.cls_pos "unknown parent class %s" pname
          | Some parent -> ancestors parent (pname :: acc))
  in
  List.iter (fun c -> ancestors c [ c.cls_name ]) classes;
  (* field duplication along the chain *)
  List.iter
    (fun c ->
      let rec chain visited c =
        match c.cls_parent with
        | None -> [ c ]
        | Some pn -> (
            if List.mem pn visited then [ c ]  (* cycle: already reported above *)
            else
              match find_class p pn with
              | Some par -> chain (pn :: visited) par @ [ c ]
              | None -> [ c ])
      in
      let fields = List.concat_map (fun c -> c.cls_fields) (chain [ c.cls_name ] c) in
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun f ->
          if Hashtbl.mem tbl f then err c.cls_pos "field %s duplicated in hierarchy of %s" f c.cls_name;
          Hashtbl.replace tbl f ())
        fields)
    classes;
  let all_fields =
    List.concat_map (fun c -> c.cls_fields) classes |> List.sort_uniq compare
  in
  let fn_arity name =
    match List.assoc_opt name builtins with
    | Some a -> Some a
    | None -> (
        match find_function p name with
        | Some f -> Some (List.length f.fn_params)
        | None -> None)
  in
  (* scope-checked expression/statement walk *)
  let rec expr env ~in_method (e : expr) =
    match e.e with
    | Int _ | Str _ | Null -> ()
    | Var name -> if not (List.mem name env) then err e.epos "undefined variable %s" name
    | This -> if not in_method then err e.epos "'this' outside of a method"
    | Field (obj, f) ->
        expr env ~in_method obj;
        if not (List.mem f all_fields) then err e.epos "field %s matches no class" f
    | Binop (_, a, b) ->
        expr env ~in_method a;
        expr env ~in_method b
    | Unop (_, a) -> expr env ~in_method a
    | Call (name, args) -> (
        List.iter (expr env ~in_method) args;
        match fn_arity name with
        | None -> err e.epos "unknown function %s" name
        | Some a ->
            if a <> List.length args then
              err e.epos "%s expects %d argument(s), got %d" name a (List.length args))
    | Method_call (obj, m, args) ->
        expr env ~in_method obj;
        List.iter (expr env ~in_method) args;
        let candidates =
          List.concat_map (fun c -> c.cls_methods) classes
          |> List.filter (fun f -> f.fn_name = m)
        in
        if candidates = [] then err e.epos "no class defines method %s" m
    | New cls -> if find_class p cls = None then err e.epos "unknown class %s" cls
    | Spawn (fn, args) -> (
        List.iter (expr env ~in_method) args;
        match find_function p fn with
        | None -> err e.epos "spawn of unknown function %s" fn
        | Some f ->
            if List.length f.fn_params <> List.length args then
              err e.epos "spawn %s expects %d argument(s), got %d" fn
                (List.length f.fn_params) (List.length args))
    | Deletor inner -> expr env ~in_method inner
  and stmts env ~in_method = function
    | [] -> ()
    | s :: rest -> (
        match s.s with
        | Var_decl (name, init) ->
            expr env ~in_method init;
            stmts (name :: env) ~in_method rest
        | Assign (Lvar name, rhs) ->
            if not (List.mem name env) then err s.spos "assignment to undefined variable %s" name;
            expr env ~in_method rhs;
            stmts env ~in_method rest
        | Assign (Lfield (obj, f, fp), rhs) ->
            expr env ~in_method obj;
            if not (List.mem f all_fields) then err fp "field %s matches no class" f;
            expr env ~in_method rhs;
            stmts env ~in_method rest
        | Expr e ->
            expr env ~in_method e;
            stmts env ~in_method rest
        | If (cond, a, b) ->
            expr env ~in_method cond;
            stmts env ~in_method a;
            stmts env ~in_method b;
            stmts env ~in_method rest
        | While (cond, body) ->
            expr env ~in_method cond;
            stmts env ~in_method body;
            stmts env ~in_method rest
        | Return None -> stmts env ~in_method rest
        | Return (Some e) ->
            expr env ~in_method e;
            stmts env ~in_method rest
        | Delete e ->
            expr env ~in_method e;
            stmts env ~in_method rest
        | Lock (m, body) ->
            expr env ~in_method m;
            stmts env ~in_method body;
            stmts env ~in_method rest
        | Block body ->
            stmts env ~in_method body;
            stmts env ~in_method rest)
  in
  List.iter (fun f -> stmts f.fn_params ~in_method:false f.fn_body) functions;
  List.iter
    (fun c ->
      List.iter (fun m -> stmts m.fn_params ~in_method:true m.fn_body) c.cls_methods;
      match c.cls_dtor with None -> () | Some body -> stmts [] ~in_method:true body)
    classes;
  (match find_function p "main" with
  | None ->
      err { Token.file = p.source_file; line = 1; col = 1 } "program has no main function"
  | Some f -> if f.fn_params <> [] then err f.fn_pos "main must take no parameters");
  List.rev !diags

let check (p : program) =
  match check_all p with [] -> () | (msg, pos) :: _ -> raise (Error (msg, pos))
