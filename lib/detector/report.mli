(** Race/deadlock reports and the de-duplicating collector.

    Valgrind de-duplicates errors by call-stack signature; the paper
    counts "reported possible data race {e locations}" (Figure 6), i.e.
    distinct signatures.  The collector keeps both every occurrence and
    the deduplicated location list. *)

module Loc = Raceguard_util.Loc

type kind =
  | Race_write  (** write with empty candidate lock-set *)
  | Race_read  (** read with empty candidate lock-set (Shared-Modified) *)
  | Lock_order  (** lock acquisition inverts an established order *)

val pp_kind : Format.formatter -> kind -> unit

type block_info = {
  b_base : int;
  b_len : int;
  b_alloc_tid : int;
  b_alloc_stack : Loc.t list;
}

(** {1 Provenance}

    The explain-trace attached to a warning: the shadow-state
    transition history of the warned address (as recorded by the
    detector when its [provenance] config knob is on) plus, after an
    [Explain] pass, the config knobs that would suppress it. *)

type transition = {
  t_clock : int;
  t_tid : int;
  t_access : string;  (** "read" / "write" / "destruct" *)
  t_from : string;  (** rendered state before *)
  t_to : string;  (** rendered state after *)
  t_loc : Loc.t option;
}

type provenance = {
  p_history : transition list;  (** oldest first, bounded *)
  p_dropped : int;
  mutable p_suppressed_by : string list;  (** filled in by [Explain] *)
}

type t = {
  kind : kind;
  addr : int;
  tid : int;
  thread_name : string;
  stack : Loc.t list;  (** innermost frame first *)
  detail : string;  (** e.g. ["Previous state: shared RO, no locks"] *)
  block : block_info option;  (** the Figure-9 allocation footer *)
  clock : int;
  provenance : provenance option;
}

val signature_depth : int
(** Stack frames participating in the dedup signature (Valgrind uses
    the top 4). *)

type signature = kind * Loc.t list

val signature : t -> signature

val pp : Format.formatter -> t -> unit
(** Valgrind-style rendering: headline, "at/by" stack, allocation
    footer, previous-state line.  Deliberately does {e not} render
    provenance — the byte-stability tests compare this output across
    fast-path modes, and provenance is an opt-in second section. *)

val pp_provenance : Format.formatter -> provenance -> unit
(** The explain trace: one line per shadow-state transition, the elided
    count, and the suppressing knobs if an [Explain] pass filled them
    in. *)

val transition_to_json : transition -> Raceguard_obs.Json.t
val provenance_to_json : provenance -> Raceguard_obs.Json.t
val to_json : t -> Raceguard_obs.Json.t
(** Machine-readable form of the full report, provenance included. *)

(** {1 Collector} *)

type collector

val collector : ?suppressions:Suppression.t list -> unit -> collector

val add : collector -> t -> unit
(** Record an occurrence (dropped if a suppression matches). *)

val occurrences : collector -> t list
val locations : collector -> (t * int) list
(** Distinct locations with occurrence counts, by first occurrence. *)

val location_count : collector -> int
val occurrence_count : collector -> int
val suppressed_count : collector -> int
