(** Race/deadlock reports and the de-duplicating collector.

    Valgrind de-duplicates errors by their call-stack signature; the
    paper counts "reported possible data race {e locations}" (Figure 6),
    i.e. distinct signatures, not individual dynamic occurrences.  The
    collector keeps both: every occurrence, and the deduplicated
    location list with occurrence counts. *)

module Loc = Raceguard_util.Loc

type kind =
  | Race_write  (** write with empty candidate lock-set *)
  | Race_read  (** read with empty candidate lock-set in Shared-Modified *)
  | Lock_order  (** lock acquisition order inverts an earlier order *)

let pp_kind ppf = function
  | Race_write -> Fmt.string ppf "Possible data race writing variable"
  | Race_read -> Fmt.string ppf "Possible data race reading variable"
  | Lock_order -> Fmt.string ppf "Lock order violation (potential deadlock)"

type block_info = {
  b_base : int;
  b_len : int;
  b_alloc_tid : int;
  b_alloc_stack : Loc.t list;
}

(* --- provenance ---------------------------------------------------- *)

(** One shadow-state transition of the warned address.  The state and
    lock-set renderings are produced by the detector at transition time
    (it owns the lock-name table), which also makes byte-stability
    across the fast path trivial to check: the strings either match or
    they don't. *)
type transition = {
  t_clock : int;
  t_tid : int;
  t_access : string;  (** "read" / "write" / "destruct" *)
  t_from : string;  (** rendered state before, e.g. "shared RO, {\"m\"}" *)
  t_to : string;  (** rendered state after *)
  t_loc : Loc.t option;
}

type provenance = {
  p_history : transition list;
      (** shadow-state evolution of the warned address since its last
          allocation, oldest first, truncated to the first
          [max_history] genuine transitions *)
  p_dropped : int;  (** transitions beyond the truncation bound *)
  mutable p_suppressed_by : string list;
      (** config knobs (e.g. "hwlc", "dr") whose enabling removes this
          warning's signature; filled in by [Explain], empty until
          then *)
}

type t = {
  kind : kind;
  addr : int;
  tid : int;
  thread_name : string;
  stack : Loc.t list;  (** innermost frame first *)
  detail : string;  (** e.g. "Previous state: shared RO, no locks" *)
  block : block_info option;
  clock : int;
  provenance : provenance option;
}

(* --- signatures ---------------------------------------------------- *)

(** Number of stack frames participating in the dedup signature
    (Valgrind's default is the top 4). *)
let signature_depth = 4

let rec take n = function [] -> [] | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

type signature = kind * Loc.t list

let signature r : signature = (r.kind, take signature_depth r.stack)

(* --- rendering ----------------------------------------------------- *)

let pp_stack ppf stack =
  List.iteri
    (fun i loc -> Fmt.pf ppf "   %s %a@\n" (if i = 0 then "at" else "by") Loc.pp loc)
    stack

let pp ppf r =
  Fmt.pf ppf "%a at %#x@\n" pp_kind r.kind r.addr;
  pp_stack ppf r.stack;
  (match r.block with
  | Some b ->
      Fmt.pf ppf " Address %#x is %d words inside a block of size %d alloc'd by thread %d@\n"
        r.addr (r.addr - b.b_base) b.b_len b.b_alloc_tid;
      pp_stack ppf (take signature_depth b.b_alloc_stack)
  | None -> ());
  if r.detail <> "" then Fmt.pf ppf " %s@\n" r.detail

(* Provenance rendering is kept out of [pp] on purpose: [pp] output is
   compared byte-for-byte by the fast-path fidelity tests and by users
   diffing runs, so the explain trace is an opt-in second section. *)
let pp_provenance ppf (p : provenance) =
  Fmt.pf ppf " Shadow-state history of the warned address:@\n";
  List.iter
    (fun tr ->
      Fmt.pf ppf "   clock %-6d thread %-3d %-8s %s -> %s%a@\n" tr.t_clock tr.t_tid tr.t_access
        tr.t_from tr.t_to
        (fun ppf -> function None -> () | Some l -> Fmt.pf ppf "  (%a)" Loc.pp l)
        tr.t_loc)
    p.p_history;
  if p.p_dropped > 0 then Fmt.pf ppf "   ... %d further transitions elided@\n" p.p_dropped;
  match p.p_suppressed_by with
  | [] -> ()
  | ks -> Fmt.pf ppf " Suppressed by enabling: %s@\n" (String.concat ", " ks)

module Json = Raceguard_obs.Json

let loc_to_json (l : Loc.t) = Json.Str (Fmt.str "%a" Loc.pp l)

let transition_to_json tr =
  Json.Obj
    ([
       ("clock", Json.int tr.t_clock);
       ("tid", Json.int tr.t_tid);
       ("access", Json.Str tr.t_access);
       ("from", Json.Str tr.t_from);
       ("to", Json.Str tr.t_to);
     ]
    @ match tr.t_loc with None -> [] | Some l -> [ ("loc", loc_to_json l) ])

let provenance_to_json p =
  Json.Obj
    [
      ("history", Json.List (List.map transition_to_json p.p_history));
      ("dropped", Json.int p.p_dropped);
      ("suppressed_by", Json.List (List.map (fun k -> Json.Str k) p.p_suppressed_by));
    ]

let to_json r =
  Json.Obj
    ([
       ("kind", Json.Str (Fmt.str "%a" pp_kind r.kind));
       ("addr", Json.int r.addr);
       ("tid", Json.int r.tid);
       ("thread", Json.Str r.thread_name);
       ("clock", Json.int r.clock);
       ("stack", Json.List (List.map loc_to_json r.stack));
       ("detail", Json.Str r.detail);
     ]
    @ (match r.block with
      | None -> []
      | Some b ->
          [
            ( "block",
              Json.Obj
                [
                  ("base", Json.int b.b_base);
                  ("len", Json.int b.b_len);
                  ("alloc_tid", Json.int b.b_alloc_tid);
                ] );
          ])
    @
    match r.provenance with
    | None -> []
    | Some p -> [ ("provenance", provenance_to_json p) ])

(* --- collector ------------------------------------------------------ *)

module Sig_map = Map.Make (struct
  type t = signature

  let compare (k1, s1) (k2, s2) =
    let c = compare k1 k2 in
    if c <> 0 then c else List.compare Loc.compare s1 s2
end)

type collector = {
  mutable all : t list;  (** reverse chronological *)
  mutable by_sig : (t * int) Sig_map.t;  (** first occurrence, count *)
  mutable suppressed : int;
  mutable suppressions : Suppression.t list;
}

let collector ?(suppressions = []) () =
  { all = []; by_sig = Sig_map.empty; suppressed = 0; suppressions }

let add c r =
  if List.exists (fun s -> Suppression.matches s ~kind:(Fmt.str "%a" pp_kind r.kind) ~stack:r.stack) c.suppressions
  then c.suppressed <- c.suppressed + 1
  else begin
    c.all <- r :: c.all;
    let s = signature r in
    c.by_sig <-
      Sig_map.update s
        (function None -> Some (r, 1) | Some (first, n) -> Some (first, n + 1))
        c.by_sig
  end

(** All occurrences, in chronological order. *)
let occurrences c = List.rev c.all

(** Distinct reported locations (the Figure 6 metric), with occurrence
    counts, ordered by first occurrence. *)
let locations c =
  Sig_map.bindings c.by_sig
  |> List.map (fun (_, (r, n)) -> (r, n))
  |> List.sort (fun (a, _) (b, _) -> compare a.clock b.clock)

let location_count c = Sig_map.cardinal c.by_sig
let occurrence_count c = List.length c.all
let suppressed_count c = c.suppressed
