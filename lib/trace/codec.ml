(** Low-level byte codec for the [raceguard-trace/1] container:
    LEB128 varints, zigzag signed ints, length-prefixed strings, fixed
    32-bit little-endian words, and CRC-32 (IEEE 802.3, the zlib
    polynomial) for the footer guard.

    Everything encodes into a [Buffer.t] and decodes from an immutable
    [string] through a {!cursor}; decoding past the end raises
    {!Truncated}, which the reader turns into a parse error — a
    truncated download is indistinguishable from a cut-off write, and
    both must be rejected, not silently half-read. *)

exception Truncated

type cursor = { data : string; mutable pos : int; limit : int }

let cursor ?(pos = 0) ?limit data =
  let limit = match limit with Some l -> l | None -> String.length data in
  if pos < 0 || limit > String.length data || pos > limit then
    invalid_arg "Codec.cursor: bad bounds";
  { data; pos; limit }

let remaining c = c.limit - c.pos
let at_end c = c.pos >= c.limit

let read_byte c =
  if c.pos >= c.limit then raise Truncated;
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let peek_byte c = if c.pos >= c.limit then raise Truncated else Char.code c.data.[c.pos]

(* --- varints ------------------------------------------------------- *)

(* allocation-free: this runs ~10 times per recorded event, so no ref
   cells and no bounds check on the already-masked byte *)
let rec write_varint_loop buf n =
  if n < 0x80 then Buffer.add_char buf (Char.unsafe_chr n)
  else begin
    Buffer.add_char buf (Char.unsafe_chr (n land 0x7F lor 0x80));
    write_varint_loop buf (n lsr 7)
  end

let write_varint buf n =
  if n < 0 then invalid_arg "Codec.write_varint: negative";
  write_varint_loop buf n

let read_varint c =
  let rec go shift acc =
    if shift > 62 then raise Truncated;
    let b = read_byte c in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

(* zigzag: signed ints of small magnitude stay small *)
let write_zigzag buf n = write_varint buf ((n lsl 1) lxor (n asr (Sys.int_size - 1)))
let read_zigzag c =
  let z = read_varint c in
  (z lsr 1) lxor (-(z land 1))

let write_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')
let read_bool c = read_byte c <> 0

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let read_string c =
  let n = read_varint c in
  if n < 0 || remaining c < n then raise Truncated;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* --- fixed-width ---------------------------------------------------- *)

let write_u32 buf n =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xFF))
  done

let read_u32_at data pos =
  if pos < 0 || pos + 4 > String.length data then raise Truncated;
  let b i = Char.code data.[pos + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

(* --- CRC-32 --------------------------------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(** CRC-32 of [data.[pos .. pos+len-1]] as a non-negative int. *)
let crc32 ?(crc = 0) data pos len =
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code data.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF
