examples/schedule_search.mli:
