lib/sip/bugs.ml: List Raceguard_util String
