test/test_cxxsim.ml: Alcotest Int List Map Option Printexc QCheck2 QCheck_alcotest Raceguard_cxxsim Raceguard_util Raceguard_vm String
