(** Race/deadlock reports and the de-duplicating collector.

    Valgrind de-duplicates errors by call-stack signature; the paper
    counts "reported possible data race {e locations}" (Figure 6), i.e.
    distinct signatures.  The collector keeps both every occurrence and
    the deduplicated location list. *)

module Loc = Raceguard_util.Loc

type kind =
  | Race_write  (** write with empty candidate lock-set *)
  | Race_read  (** read with empty candidate lock-set (Shared-Modified) *)
  | Lock_order  (** lock acquisition inverts an established order *)

val pp_kind : Format.formatter -> kind -> unit

type block_info = {
  b_base : int;
  b_len : int;
  b_alloc_tid : int;
  b_alloc_stack : Loc.t list;
}

type t = {
  kind : kind;
  addr : int;
  tid : int;
  thread_name : string;
  stack : Loc.t list;  (** innermost frame first *)
  detail : string;  (** e.g. ["Previous state: shared RO, no locks"] *)
  block : block_info option;  (** the Figure-9 allocation footer *)
  clock : int;
}

val signature_depth : int
(** Stack frames participating in the dedup signature (Valgrind uses
    the top 4). *)

type signature = kind * Loc.t list

val signature : t -> signature

val pp : Format.formatter -> t -> unit
(** Valgrind-style rendering: headline, "at/by" stack, allocation
    footer, previous-state line. *)

(** {1 Collector} *)

type collector

val collector : ?suppressions:Suppression.t list -> unit -> collector

val add : collector -> t -> unit
(** Record an occurrence (dropped if a suppression matches). *)

val occurrences : collector -> t list
val locations : collector -> (t * int) list
(** Distinct locations with occurrence counts, by first occurrence. *)

val location_count : collector -> int
val occurrence_count : collector -> int
val suppressed_count : collector -> int
