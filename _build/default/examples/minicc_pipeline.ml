(* The full instrumentation pipeline of Figure 3 on a MiniC++ program:
   preprocess -> parse -> annotate -> pretty-print -> execute on the VM
   with the race detector attached.

     dune exec examples/minicc_pipeline.exe [file.mcc]

   Without an argument it runs the built-in Figure 4 example. *)

module M = Raceguard_minicc
module Det = Raceguard_detector
module Vm = Raceguard_vm

let () =
  let file, src =
    if Array.length Sys.argv > 1 then begin
      let file = Sys.argv.(1) in
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      (file, src)
    end
    else ("g.mcc", Raceguard.Experiments.figure4_source)
  in
  let audit ~annotate =
    let interp, pretty, n_annotated = M.Interp.compile ~annotate ~file src in
    let helgrind = Det.Helgrind.create Det.Helgrind.hwlc_dr in
    let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed = 11 } () in
    Vm.Engine.add_tool vm (Det.Helgrind.tool helgrind);
    let outcome = Vm.Engine.run vm (fun () -> M.Interp.run_main interp) in
    List.iter
      (fun (tid, name, e) ->
        Printf.printf "thread %d (%s) raised: %s\n" tid name (Printexc.to_string e))
      outcome.failures;
    (pretty, n_annotated, Det.Helgrind.locations helgrind, M.Interp.output interp)
  in
  Printf.printf "=== uninstrumented build of %s ===\n" file;
  let _, _, locs, out = audit ~annotate:false in
  Printf.printf "program output: [%s]\n" (String.concat "; " out);
  Printf.printf "%d reported location(s)\n\n" (List.length locs);
  List.iter (fun (r, _) -> Fmt.pr "%a@." Det.Report.pp r) locs;
  Printf.printf "=== instrumented build ===\n";
  let pretty, n, locs, out = audit ~annotate:true in
  Printf.printf "program output: [%s]  (identical — the annotation is a no-op)\n"
    (String.concat "; " out);
  Printf.printf "%d delete(s) annotated; %d reported location(s)\n\n" n (List.length locs);
  List.iter (fun (r, _) -> Fmt.pr "%a@." Det.Report.pp r) locs;
  Printf.printf "--- annotated source as fed to the compiler ---\n%s" pretty
