(** The registrar: user → contact bindings — single-mutex or sharded.

    Binding objects are created by the worker handling a REGISTER and
    later deleted by {e different} workers (refresh, unregister,
    expiry) after being unlinked under the lock — correct code whose
    destructor chains are the paper's dominant false-positive class
    until the DR annotation suppresses them.

    The default [Unsharded] mode keeps the historical single-mutex
    layout (byte-identical VM operation sequence).  [Sharded] stripes
    the table over per-shard mutexes with online resize/rebalance; the
    [Resilient] flavor keeps the {!audit} invariants under every fault
    plan, while [Legacy_striped] carries three injected bug classes
    (unlocked cross-shard transfer, resize racing a refresh,
    stale-router read) plus hash-collision blindness as ground truth
    for the detectors and the chaos oracles. *)

module Refstring = Raceguard_cxxsim.Refstring

val binding_class : Raceguard_cxxsim.Object_model.class_desc
val contact_binding_class : Raceguard_cxxsim.Object_model.class_desc

val hash_string : string -> int
(** djb2-style hash used as container key for AORs/call-ids. *)

val collision_pair : unit -> string * string
(** Two distinct users whose [user ^ "@example.com"] AORs collide
    under {!hash_string} — the collision-blindness regression input. *)

type flavor =
  | Resilient  (** invariant-clean striped implementation *)
  | Legacy_striped  (** injected shard bug classes + collision blindness *)

type sharding =
  | Unsharded
  | Sharded of {
      flavor : flavor;
      initial : int;  (** shard count at creation (≥ 1) *)
      grow_at : int;
          (** double the shard count when total bindings reach
              [grow_at × current shard count]; 0 = manual growth only *)
      max_shards : int;
    }

type t

val create :
  ?sharding:sharding -> alloc:Raceguard_cxxsim.Allocator.t -> stats:Stats.t -> unit -> t
(** [sharding] defaults to [Unsharded], which is byte-identical to the
    historical single-mutex registrar. *)

val register :
  t ->
  annotate:bool ->
  aor:string ->
  contact:string ->
  cseq:int ->
  expires:int ->
  [ `Registered | `Refreshed ]
(** Add or refresh a binding; a refresh unlinks the old binding under
    the lock and deletes it outside (the FP-generating pattern).  On a
    sharded registrar the triggering worker also grows the table when
    the load factor crosses [grow_at]. *)

val unregister : t -> annotate:bool -> aor:string -> bool

val lookup : t -> aor:string -> Refstring.t option
(** Current contact for an AOR, as a {e copy} of the stored string
    (caller must release it); [None] if absent or expired. *)

val expire_stale : t -> annotate:bool -> int
(** Delete every expired binding; returns how many. *)

val size : t -> int

val bound_aors : t -> string list
(** Host-side mirror of the currently bound AORs, sorted — post-run
    oracle use only (no VM traffic, safe after shutdown).  A binding a
    legacy-striped registrar duplicated across shards appears once per
    holding shard. *)

(** {1 Sharding introspection} *)

val rebalance : t -> bool
(** Force one shard-count doubling with binding migration (VM context
    required); [false] on an unsharded registrar or at [max_shards]. *)

val shard_count : t -> int
val resizes : t -> int
val migrations : t -> int

val route : t -> aor:string -> int
(** Which shard the AOR routes to at the current shard count
    (host-side computation, no VM traffic). *)

val audit : t -> string list
(** Post-run invariant audit (host-side, safe after shutdown): empty
    on a correct registrar.  Violations are rendered as
    ["lost:AOR"], ["ghost:AOR"], ["dup:AOR"], ["stale-contact:AOR"],
    ["misplaced:AOR"] and ["lock-order:i>j"] — the chaos "shards"
    oracle evidence. *)
