module Rng = Raceguard_util.Rng

type params = {
  base : int;
  factor_num : int;
  factor_den : int;
  cap : int;
  jitter_pct : int;
}

let default = { base = 50; factor_num = 2; factor_den = 1; cap = 400; jitter_pct = 25 }

let max_delay p = p.cap + (p.cap * p.jitter_pct / 100)

let schedule p ~seed ~attempts =
  let rng = Rng.create ~seed:(seed lxor 0x5DEECE66) in
  let ceiling = max_delay p in
  let rec go k raw prev acc =
    if k >= attempts then List.rev acc
    else begin
      let raw = min p.cap (max 1 raw) in
      let jitter = if p.jitter_pct <= 0 then 0 else Rng.int rng (1 + (raw * p.jitter_pct / 100)) in
      (* [max prev]: jitter can never make attempt k shorter than
         attempt k-1 — monotonicity is part of the contract *)
      let d = min ceiling (max prev (raw + jitter)) in
      let next_raw =
        if raw >= p.cap then p.cap else raw * p.factor_num / max 1 p.factor_den
      in
      go (k + 1) next_raw d (d :: acc)
    end
  in
  go 0 p.base 1 []

let delay p ~seed ~attempt =
  match List.nth_opt (schedule p ~seed ~attempts:(attempt + 1)) attempt with
  | Some d -> d
  | None -> max_delay p
