(** Static lockset & thread-escape analysis for MiniC++.

    A lightweight interprocedural companion to the dynamic Helgrind
    detector, in the spirit of RacerF (Dacík & Vojnar 2025): instead of
    watching one schedule execute, it walks the AST once per thread
    root and computes

    - {b must-held locksets} per access, propagated through calls
      (bounded inlining, conservative intersection at joins), with the
      paper's HWLC bus lock modelled as an implicit lock held for
      reading by every read and for writing by bus-locked RMWs;
    - {b fork-join ordering}: every access carries the window of thread
      spawns it can overlap (sequence numbers against spawn points,
      sets of surely-joined threads), so initialisation before [spawn]
      and tear-down after [join] do not produce false races;
    - {b thread escape}: which allocation sites can be reached by more
      than one thread — the transitive closure of spawn arguments
      through the heap points-to map.

    Conflicting concurrent accesses to an escaping site whose static
    locksets have an empty intersection become warnings carrying
    [Loc.t] stacks built exactly like the interpreter's dynamic frames,
    so static and dynamic findings can be matched by signature.  The
    same facts are exported the other two ways the paper uses them:
    suppressions for consistently-guarded accesses (§2.3.1, generated
    instead of hand-written) and thread-locality hints that let the
    dynamic detector's shadow fast path skip provably-local words.

    {b Soundness trade-offs} (DESIGN.md §10): allocation sites abstract
    all their instances, locks are identified by creation site,
    recursion and deep call chains are truncated with havoc, and
    condition-variable / semaphore / HB ordering is ignored (like the
    dynamic lockset algorithm).  The analysis is neither sound nor
    complete — it is a lint. *)

open Ast
module Loc = Raceguard_util.Loc
module Report = Raceguard_detector.Report
module Suppression = Raceguard_detector.Suppression
module Json = Raceguard_obs.Json
module SMap = Map.Make (String)
module ISet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Abstract domain                                                     *)
(* ------------------------------------------------------------------ *)

(** Abstract values: allocation sites, lock creation sites, thread
    handles (by root id), primitives, and the unknown top. *)
type av = Obj of int | Lockv of int | Tidv of int | Prim | Unknown

module Vset = Set.Make (struct
  type t = av

  let compare = compare
end)

let v_prim = Vset.singleton Prim
let v_unknown = Vset.singleton Unknown

(** The implicit HWLC bus lock (held for reading by every read, for
    writing by LOCK-prefixed RMWs); never a real site id. *)
let bus = -1

type site = {
  site_id : int;
  site_loc : Loc.t;
  site_desc : string;  (** ["new Counter"], ["alloc"], ["mutex"], ... *)
  site_cls : string option;  (** class of [new] sites, for dispatch *)
  site_alloc : bool;  (** a memory allocation (hint candidate) *)
}

(* ------------------------------------------------------------------ *)
(* Thread roots and access records                                     *)
(* ------------------------------------------------------------------ *)

type root = {
  r_id : int;
  r_fname : string;
  r_parent : int;  (** -1 for main *)
  r_spawn_site : Loc.t option;
  mutable r_args : Vset.t list;
  mutable r_spawn_seq : int;  (** on the spawning root's timeline *)
  mutable r_prior_joined : ISet.t;  (** roots surely joined before this spawn *)
  mutable r_multi : bool;  (** spawn site can execute more than once *)
  mutable r_final_joined : ISet.t;  (** roots surely joined when this root ends *)
  mutable r_walked : bool;
}

type acc_kind = Aread | Awrite

type access = {
  a_kind : acc_kind;
  a_site : int;
  a_field : string;
  a_stack : Loc.t list;  (** innermost first, mirrors the dynamic frames *)
  a_pos : Token.pos;  (** precise span (line *and* column) of the access *)
  a_locks : ISet.t;  (** protecting set ([bus] included where it applies) *)
  a_root : int;
  mutable a_seq_lo : int;
  mutable a_seq_hi : int;
  mutable a_joined : ISet.t;  (** roots surely joined at every occurrence *)
}

type ctx = {
  program : program;
  cg : Callgraph.t;
  site_tbl : (string, site) Hashtbl.t;
  mutable sites : site list;  (** reverse creation order; ids stable across passes *)
  mutable next_site : int;
  heap : (int * string, Vset.t) Hashtbl.t;  (** flow-insensitive (site, field) map *)
  mutable changed : bool;  (** heap or root-arg growth since pass start *)
  root_tbl : (string, root) Hashtbl.t;
  mutable roots : root list;  (** reverse creation order *)
  root_by_id : (int, root) Hashtbl.t;
  acc_tbl : (string, access) Hashtbl.t;
  mutable accs : access list;  (** reverse first-seen order *)
  mutable seq : int;
  mutable escape_seeds : ISet.t;  (** sites stored through unknown pointers *)
  mutable benign_sites : ISet.t;  (** sites covered by [benign_race] *)
  mutable truncated : bool;  (** some bound was hit; results are partial *)
}

let max_inline_depth = 12
let max_loop_iters = 4
let max_passes = 6

let root_of ctx id = Hashtbl.find ctx.root_by_id id

let site ctx ~loc ~desc ~cls ~alloc =
  let key = Fmt.str "%s|%s|%d|%s" loc.Loc.file loc.Loc.func loc.Loc.line desc in
  match Hashtbl.find_opt ctx.site_tbl key with
  | Some s -> s
  | None ->
      let s =
        { site_id = ctx.next_site; site_loc = loc; site_desc = desc; site_cls = cls;
          site_alloc = alloc }
      in
      ctx.next_site <- ctx.next_site + 1;
      Hashtbl.add ctx.site_tbl key s;
      ctx.sites <- s :: ctx.sites;
      s

let site_by_id ctx id = List.find (fun s -> s.site_id = id) ctx.sites

let heap_get ctx s f =
  Option.value ~default:Vset.empty (Hashtbl.find_opt ctx.heap (s, f))

let heap_add ctx s f v =
  let old = heap_get ctx s f in
  let nv = Vset.union old v in
  if not (Vset.equal nv old) then begin
    Hashtbl.replace ctx.heap (s, f) nv;
    ctx.changed <- true
  end

let obj_sites v =
  Vset.fold (fun x acc -> match x with Obj s -> ISet.add s acc | _ -> acc) v ISet.empty

(* ------------------------------------------------------------------ *)
(* The abstract walk                                                   *)
(* ------------------------------------------------------------------ *)

(** Flow-sensitive per-path state. [env] is may-points-to; the held
    sets are must-locksets (intersection at merges); [joined] is the
    must-set of surely-joined roots. *)
type st = {
  env : Vset.t SMap.t;
  held_any : ISet.t;
  held_write : ISet.t;
  joined : ISet.t;
}

let join_st a b =
  {
    env = SMap.union (fun _ x y -> Some (Vset.union x y)) a.env b.env;
    held_any = ISet.inter a.held_any b.held_any;
    held_write = ISet.inter a.held_write b.held_write;
    joined = ISet.inter a.joined b.joined;
  }

let st_equal a b =
  SMap.equal Vset.equal a.env b.env
  && ISet.equal a.held_any b.held_any
  && ISet.equal a.held_write b.held_write
  && ISet.equal a.joined b.joined

type frame = {
  fr_func : string;  (** for access attribution, like [Interp.frame.func] *)
  fr_stack : Loc.t list;  (** function-entry locs, innermost first *)
  fr_this : Vset.t;
  fr_root : root;
  fr_depth : int;
  fr_calls : string list;  (** node names on the inline chain (cycle cut) *)
  fr_ret : Vset.t ref;
}

let loc_of ~func (pos : Token.pos) = Loc.v pos.Token.file func pos.Token.line

let render_iset s = String.concat "," (List.map string_of_int (ISet.elements s))
let render_stack st = String.concat ";" (List.map Loc.to_string st)

(* Record one access (deduplicated on everything but the sequence
   window, which merges). *)
let add_access ctx fr st ~kind ~vobj ~field ~loc ~pos ~atomic =
  ctx.seq <- ctx.seq + 1;
  let seq = ctx.seq in
  let locks =
    match kind with
    | Aread -> ISet.add bus st.held_any
    | Awrite -> if atomic then ISet.add bus st.held_write else st.held_write
  in
  let stack = loc :: fr.fr_stack in
  Vset.iter
    (function
      | Obj s ->
          let key =
            Fmt.str "%d|%d|%s|%s|%d|%s|%s" fr.fr_root.r_id s field
              (match kind with Aread -> "r" | Awrite -> "w")
              pos.Token.col (render_stack stack) (render_iset locks)
          in
          (match Hashtbl.find_opt ctx.acc_tbl key with
          | Some a ->
              a.a_seq_lo <- min a.a_seq_lo seq;
              a.a_seq_hi <- max a.a_seq_hi seq;
              a.a_joined <- ISet.inter a.a_joined st.joined
          | None ->
              let a =
                { a_kind = kind; a_site = s; a_field = field; a_stack = stack;
                  a_pos = pos; a_locks = locks; a_root = fr.fr_root.r_id;
                  a_seq_lo = seq; a_seq_hi = seq; a_joined = st.joined }
              in
              Hashtbl.add ctx.acc_tbl key a;
              ctx.accs <- a :: ctx.accs)
      | _ -> ())
    vobj

(* the class chain, root first — mirrors [Interp.chain] *)
let rec chain ctx c =
  match c.cls_parent with
  | None -> [ c ]
  | Some pn -> (
      match find_class ctx.program pn with
      | Some parent -> chain ctx parent @ [ c ]
      | None -> [ c ])

(* virtual dispatch from a dynamic class, like [Interp.resolve_method] *)
let resolve_method ctx c m =
  let rec go = function
    | [] -> None
    | cls :: rest -> (
        match List.find_opt (fun f -> f.fn_name = m) cls.cls_methods with
        | Some f -> Some f
        | None -> go rest)
  in
  go (List.rev (chain ctx c))

let singleton_of v pick =
  match Vset.elements (Vset.filter (fun x -> pick x <> None) v) with
  | [ x ] -> pick x
  | _ -> None

let rec eval ctx fr st (e : expr) : st * Vset.t =
  let loc pos = loc_of ~func:fr.fr_func pos in
  match e.e with
  | Int _ | Str _ | Null -> (st, v_prim)
  | Var name -> (st, Option.value ~default:v_unknown (SMap.find_opt name st.env))
  | This -> (st, fr.fr_this)
  | Field (o, f) ->
      let st, vo = eval ctx fr st o in
      (* [dynamic_class] reads the vptr, then the field is read *)
      add_access ctx fr st ~kind:Aread ~vobj:vo ~field:"<vptr>" ~loc:(loc e.epos)
        ~pos:e.epos ~atomic:false;
      add_access ctx fr st ~kind:Aread ~vobj:vo ~field:f ~loc:(loc e.epos) ~pos:e.epos
        ~atomic:false;
      let v =
        ISet.fold (fun s acc -> Vset.union acc (heap_get ctx s f)) (obj_sites vo) Vset.empty
      in
      let v = if Vset.mem Unknown vo then Vset.add Unknown v else v in
      (st, if Vset.is_empty v then v_prim else v)
  | Binop ((And | Or), a, b) ->
      (* the right operand may be skipped at runtime *)
      let st1, _ = eval ctx fr st a in
      let st2, _ = eval ctx fr st1 b in
      (join_st st1 st2, v_prim)
  | Binop (_, a, b) ->
      let st, _ = eval ctx fr st a in
      let st, _ = eval ctx fr st b in
      (st, v_prim)
  | Unop (_, a) ->
      let st, _ = eval ctx fr st a in
      (st, v_prim)
  | Call (name, args) -> eval_call ctx fr st name args e.epos
  | Method_call (o, m, args) ->
      let st, vo = eval ctx fr st o in
      add_access ctx fr st ~kind:Aread ~vobj:vo ~field:"<vptr>" ~loc:(loc e.epos)
        ~pos:e.epos ~atomic:false;
      let st, vargs = eval_list ctx fr st args in
      (* dispatch per possible dynamic class *)
      let classes_of =
        let known =
          ISet.fold
            (fun s acc ->
              match (site_by_id ctx s).site_cls with Some c -> c :: acc | None -> acc)
            (obj_sites vo) []
        in
        if Vset.mem Unknown vo || known = [] then
          List.filter_map
            (fun c ->
              if List.exists (fun f -> f.fn_name = m) c.cls_methods then Some c.cls_name
              else None)
            (classes ctx.program)
        else known
      in
      let this_ = Vset.filter (function Obj _ | Unknown -> true | _ -> false) vo in
      List.fold_left
        (fun (acc_st, acc_v) cname ->
          match find_class ctx.program cname with
          | None -> (acc_st, acc_v)
          | Some c -> (
              match resolve_method ctx c m with
              | None -> (acc_st, acc_v)
              | Some f ->
                  let st', v =
                    inline_call ctx fr st ~name:(cname ^ "::" ^ m)
                      ~node:(Callgraph.Method (cname, m)) ~this:this_ f vargs
                  in
                  (join_st acc_st st', Vset.union acc_v v)))
        (st, Vset.empty) classes_of
      |> fun (st, v) -> (st, if Vset.is_empty v then v_prim else v)
  | New cls_name -> (
      match find_class ctx.program cls_name with
      | None -> (st, v_unknown)
      | Some c ->
          let s =
            site ctx ~loc:(loc e.epos) ~desc:("new " ^ cls_name) ~cls:(Some cls_name)
              ~alloc:true
          in
          let vo = Vset.singleton (Obj s.site_id) in
          (* each constructor level writes its own vtable pointer *)
          List.iter
            (fun level ->
              add_access ctx fr st ~kind:Awrite ~vobj:vo ~field:"<vptr>"
                ~loc:(loc_of ~func:(level.cls_name ^ "::" ^ level.cls_name) e.epos)
                ~pos:e.epos ~atomic:false)
            (chain ctx c);
          (st, vo))
  | Spawn (fname, args) ->
      let st, vargs = eval_list ctx fr st args in
      ctx.seq <- ctx.seq + 1;
      let spawn_seq = ctx.seq in
      let key =
        Fmt.str "%s|%d|%s|%s" e.epos.Token.file e.epos.Token.line fname
          (render_stack fr.fr_stack)
      in
      let r =
        match Hashtbl.find_opt ctx.root_tbl key with
        | Some r ->
            (* the same spawn site executed again in this pass: the
               thread may have multiple concurrent instances *)
            r.r_multi <- true;
            r.r_spawn_seq <- min r.r_spawn_seq spawn_seq;
            r.r_prior_joined <- ISet.inter r.r_prior_joined st.joined;
            let args' =
              if List.length r.r_args = List.length vargs then
                List.map2 Vset.union r.r_args vargs
              else vargs
            in
            if not (List.for_all2 Vset.equal args' r.r_args) then begin
              r.r_args <- args';
              if r.r_walked then ctx.changed <- true
            end;
            r
        | None ->
            let r =
              { r_id = List.length ctx.roots; r_fname = fname;
                r_parent = fr.fr_root.r_id; r_spawn_site = Some (loc e.epos);
                r_args = vargs; r_spawn_seq = spawn_seq; r_prior_joined = st.joined;
                r_multi = false; r_final_joined = ISet.empty; r_walked = false }
            in
            Hashtbl.add ctx.root_tbl key r;
            Hashtbl.add ctx.root_by_id r.r_id r;
            ctx.roots <- r :: ctx.roots;
            r
      in
      (st, Vset.singleton (Tidv r.r_id))
  | Deletor inner ->
      let st, vi = eval ctx fr st inner in
      (* the deletor wrapper reads the vptr under its own name *)
      add_access ctx fr st ~kind:Aread ~vobj:vi ~field:"<vptr>"
        ~loc:(loc_of ~func:"ca_deletor_single" e.epos) ~pos:e.epos ~atomic:false;
      (st, vi)

and eval_list ctx fr st args =
  List.fold_left
    (fun (st, acc) a ->
      let st, v = eval ctx fr st a in
      (st, acc @ [ v ]))
    (st, []) args

and eval_call ctx fr st name args pos =
  let loc = loc_of ~func:fr.fr_func pos in
  let with_args k =
    let st, vargs = eval_list ctx fr st args in
    k st vargs
  in
  let lockv st vargs = match vargs with [ v ] -> singleton_of v (function Lockv l -> Some l | _ -> None) | _ -> ignore st; None in
  match name with
  | "mutex" ->
      with_args (fun st _ ->
          let s = site ctx ~loc ~desc:"mutex" ~cls:None ~alloc:false in
          (st, Vset.singleton (Lockv s.site_id)))
  | "rwlock" ->
      with_args (fun st _ ->
          let s = site ctx ~loc ~desc:"rwlock" ~cls:None ~alloc:false in
          (st, Vset.singleton (Lockv s.site_id)))
  | "mutex_lock" ->
      with_args (fun st vargs ->
          match lockv st vargs with
          | Some l ->
              ( { st with held_any = ISet.add l st.held_any;
                  held_write = ISet.add l st.held_write },
                v_prim )
          | None -> (st, v_prim))
  | "mutex_unlock" | "rw_unlock" ->
      with_args (fun st vargs ->
          match lockv st vargs with
          | Some l ->
              ( { st with held_any = ISet.remove l st.held_any;
                  held_write = ISet.remove l st.held_write },
                v_prim )
          | None ->
              (* releasing an unknown lock: drop must-held info *)
              ({ st with held_any = ISet.empty; held_write = ISet.empty }, v_prim))
  | "rdlock" ->
      with_args (fun st vargs ->
          match lockv st vargs with
          | Some l -> ({ st with held_any = ISet.add l st.held_any }, v_prim)
          | None -> (st, v_prim))
  | "wrlock" ->
      with_args (fun st vargs ->
          match lockv st vargs with
          | Some l ->
              ( { st with held_any = ISet.add l st.held_any;
                  held_write = ISet.add l st.held_write },
                v_prim )
          | None -> (st, v_prim))
  | "join" ->
      with_args (fun st vargs ->
          match vargs with
          | [ v ] -> (
              match singleton_of v (function Tidv r -> Some r | _ -> None) with
              | Some r -> ({ st with joined = ISet.add r st.joined }, v_prim)
              | None -> (st, v_prim))
          | _ -> (st, v_prim))
  | "alloc" ->
      with_args (fun st _ ->
          let s = site ctx ~loc ~desc:"alloc" ~cls:None ~alloc:true in
          (st, Vset.singleton (Obj s.site_id)))
  | "load" ->
      with_args (fun st vargs ->
          match vargs with
          | [ vp ] ->
              add_access ctx fr st ~kind:Aread ~vobj:vp ~field:"[]" ~loc ~pos
                ~atomic:false;
              let v =
                ISet.fold
                  (fun s acc -> Vset.union acc (heap_get ctx s "[]"))
                  (obj_sites vp) Vset.empty
              in
              (st, if Vset.is_empty v then v_prim else v)
          | _ -> (st, v_prim))
  | "store" ->
      with_args (fun st vargs ->
          match vargs with
          | [ vp; vv ] ->
              add_access ctx fr st ~kind:Awrite ~vobj:vp ~field:"[]" ~loc ~pos
                ~atomic:false;
              ISet.iter (fun s -> heap_add ctx s "[]" vv) (obj_sites vp);
              if Vset.mem Unknown vp then
                ctx.escape_seeds <- ISet.union ctx.escape_seeds (obj_sites vv);
              (st, v_prim)
          | _ -> (st, v_prim))
  | "atomic_inc" | "atomic_dec" ->
      with_args (fun st vargs ->
          match vargs with
          | [ vp ] ->
              add_access ctx fr st ~kind:Aread ~vobj:vp ~field:"[]" ~loc ~pos ~atomic:true;
              add_access ctx fr st ~kind:Awrite ~vobj:vp ~field:"[]" ~loc ~pos ~atomic:true;
              (st, v_prim)
          | _ -> (st, v_prim))
  | "benign_race" ->
      with_args (fun st vargs ->
          (match vargs with
          | vp :: _ -> ctx.benign_sites <- ISet.union ctx.benign_sites (obj_sites vp)
          | [] -> ());
          (st, v_prim))
  | "ca_deletor_single" ->
      with_args (fun st vargs ->
          match vargs with
          | [ vi ] ->
              add_access ctx fr st ~kind:Aread ~vobj:vi ~field:"<vptr>"
                ~loc:(loc_of ~func:"ca_deletor_single" pos) ~pos ~atomic:false;
              (st, vi)
          | _ -> (st, v_prim))
  | "free" | "hg_destruct" | "cond" | "cond_wait" | "cond_signal" | "cond_broadcast"
  | "sem" | "sem_wait" | "sem_post" | "hb_before" | "hb_after" | "yield" | "sleep"
  | "now" | "self" | "random" | "print" | "print_str" ->
      with_args (fun st _ -> (st, v_prim))
  | _ -> (
      match find_function ctx.program name with
      | Some f ->
          with_args (fun st vargs ->
              inline_call ctx fr st ~name ~node:(Callgraph.Func name) ~this:Vset.empty f
                vargs)
      | None -> with_args (fun st _ -> (st, v_unknown)))

(* Inline a call, bounded by depth and by the call string (recursion).
   A call we refuse to inline is havocked: its result is unknown, and
   if it may use unbalanced lock primitives the caller's must-held sets
   are cleared. *)
and inline_call ctx fr st ~name ~node ~this f vargs =
  if fr.fr_depth >= max_inline_depth || List.mem name fr.fr_calls then begin
    ctx.truncated <- true;
    let st =
      if Callgraph.may_alter_locks ctx.cg node then
        { st with held_any = ISet.empty; held_write = ISet.empty }
      else st
    in
    (st, v_unknown)
  end
  else if List.length f.fn_params <> List.length vargs then (st, v_unknown)
  else begin
    let entry = loc_of ~func:name f.fn_pos in
    let fr' =
      { fr_func = name; fr_stack = entry :: fr.fr_stack; fr_this = this;
        fr_root = fr.fr_root; fr_depth = fr.fr_depth + 1;
        fr_calls = name :: fr.fr_calls; fr_ret = ref Vset.empty }
    in
    let env =
      List.fold_left2 (fun m p v -> SMap.add p v m) SMap.empty f.fn_params vargs
    in
    let st' = walk_stmts ctx fr' { st with env } f.fn_body in
    let ret = !(fr'.fr_ret) in
    ({ st' with env = st.env }, if Vset.is_empty ret then v_prim else ret)
  end

and walk_stmts ctx fr st body = List.fold_left (walk_stmt ctx fr) st body

and walk_stmt ctx fr st (s : stmt) : st =
  let loc pos = loc_of ~func:fr.fr_func pos in
  match s.s with
  | Var_decl (name, e) | Assign (Lvar name, e) ->
      let st, v = eval ctx fr st e in
      { st with env = SMap.add name v st.env }
  | Assign (Lfield (o, f, fpos), e) ->
      let st, vo = eval ctx fr st o in
      add_access ctx fr st ~kind:Aread ~vobj:vo ~field:"<vptr>" ~loc:(loc fpos) ~pos:fpos
        ~atomic:false;
      let st, vv = eval ctx fr st e in
      add_access ctx fr st ~kind:Awrite ~vobj:vo ~field:f ~loc:(loc fpos) ~pos:fpos
        ~atomic:false;
      ISet.iter (fun si -> heap_add ctx si f vv) (obj_sites vo);
      if Vset.mem Unknown vo then
        ctx.escape_seeds <- ISet.union ctx.escape_seeds (obj_sites vv);
      st
  | Expr e ->
      let st, _ = eval ctx fr st e in
      st
  | If (c, a, b) ->
      let st, _ = eval ctx fr st c in
      let sa = walk_stmts ctx fr st a in
      let sb = walk_stmts ctx fr st b in
      join_st sa sb
  | While (c, body) ->
      let st0, _ = eval ctx fr st c in
      let rec fix acc i =
        if i >= max_loop_iters then begin
          ctx.truncated <- true;
          acc
        end
        else
          let st1 = walk_stmts ctx fr acc body in
          let st1, _ = eval ctx fr st1 c in
          let j = join_st acc st1 in
          if st_equal j acc then acc else fix j (i + 1)
      in
      fix st0 0
  | Return None -> st
  | Return (Some e) ->
      let st, v = eval ctx fr st e in
      fr.fr_ret := Vset.union !(fr.fr_ret) v;
      st
  | Delete e ->
      let st, ve = eval ctx fr st e in
      add_access ctx fr st ~kind:Aread ~vobj:ve ~field:"<vptr>" ~loc:(loc s.spos)
        ~pos:s.spos ~atomic:false;
      (* destructor chain, most-derived first: each level writes its
         vptr, then runs its body with no extra stack frame (the
         interpreter does not push one either) *)
      ISet.fold
        (fun si st ->
          match (site_by_id ctx si).site_cls with
          | None -> st
          | Some cname -> (
              match find_class ctx.program cname with
              | None -> st
              | Some c ->
                  let vo = Vset.singleton (Obj si) in
                  List.fold_left
                    (fun st level ->
                      let dtor_name = level.cls_name ^ "::~" ^ level.cls_name in
                      add_access ctx fr st ~kind:Awrite ~vobj:vo ~field:"<vptr>"
                        ~loc:(loc_of ~func:dtor_name s.spos) ~pos:s.spos ~atomic:false;
                      match level.cls_dtor with
                      | None -> st
                      | Some body ->
                          if
                            fr.fr_depth >= max_inline_depth
                            || List.mem dtor_name fr.fr_calls
                          then begin
                            ctx.truncated <- true;
                            st
                          end
                          else
                            let fr' =
                              { fr with fr_func = dtor_name; fr_this = vo;
                                fr_depth = fr.fr_depth + 1;
                                fr_calls = dtor_name :: fr.fr_calls;
                                fr_ret = ref Vset.empty }
                            in
                            let st' = walk_stmts ctx fr' { st with env = SMap.empty } body in
                            { st' with env = st.env })
                    st
                    (List.rev (chain ctx c))))
        (obj_sites ve) st
  | Lock (m, body) ->
      let st1, vm = eval ctx fr st m in
      let held =
        match singleton_of vm (function Lockv l -> Some l | _ -> None) with
        | Some l -> Some l
        | None -> None
      in
      let st_in =
        match held with
        | Some l ->
            { st1 with held_any = ISet.add l st1.held_any;
              held_write = ISet.add l st1.held_write }
        | None -> st1
      in
      let st_out = walk_stmts ctx fr st_in body in
      (* scoped: the caller's held sets are restored on exit *)
      { st_out with held_any = st1.held_any; held_write = st1.held_write }
  | Block body -> walk_stmts ctx fr st body

(* ------------------------------------------------------------------ *)
(* Per-pass driver                                                     *)
(* ------------------------------------------------------------------ *)

let walk_root ctx r =
  r.r_walked <- true;
  match find_function ctx.program r.r_fname with
  | None -> ()
  | Some f ->
      let entry = loc_of ~func:r.r_fname f.fn_pos in
      (* mirror the engine's initial thread frames: the root thread
         starts at [main (<vm>:0)], a spawned thread at its spawn
         site (engine.ml's thread creation) *)
      let base =
        match r.r_spawn_site with
        | None -> [ Loc.v "<vm>" "main" 0 ]
        | Some sp -> [ sp ]
      in
      let fr =
        { fr_func = r.r_fname; fr_stack = entry :: base; fr_this = Vset.empty; fr_root = r;
          fr_depth = 0; fr_calls = [ r.r_fname ]; fr_ret = ref Vset.empty }
      in
      let args =
        if List.length r.r_args = List.length f.fn_params then r.r_args
        else List.map (fun _ -> v_unknown) f.fn_params
      in
      let env =
        List.fold_left2 (fun m p v -> SMap.add p v m) SMap.empty f.fn_params args
      in
      let st =
        walk_stmts ctx fr
          { env; held_any = ISet.empty; held_write = ISet.empty; joined = ISet.empty }
          f.fn_body
      in
      r.r_final_joined <- st.joined

let run_pass ctx =
  Hashtbl.reset ctx.root_tbl;
  Hashtbl.reset ctx.root_by_id;
  Hashtbl.reset ctx.acc_tbl;
  ctx.roots <- [];
  ctx.accs <- [];
  ctx.seq <- 0;
  ctx.escape_seeds <- ISet.empty;
  ctx.benign_sites <- ISet.empty;
  let main_root =
    { r_id = 0; r_fname = "main"; r_parent = -1; r_spawn_site = None; r_args = [];
      r_spawn_seq = 0; r_prior_joined = ISet.empty; r_multi = false;
      r_final_joined = ISet.empty; r_walked = false }
  in
  Hashtbl.add ctx.root_by_id 0 main_root;
  ctx.roots <- [ main_root ];
  let rec drain () =
    match List.find_opt (fun r -> not r.r_walked) (List.rev ctx.roots) with
    | None -> ()
    | Some r ->
        walk_root ctx r;
        drain ()
  in
  drain ()

(* ------------------------------------------------------------------ *)
(* Concurrency between access windows                                  *)
(* ------------------------------------------------------------------ *)

(* Roots surely finished given a must-joined set: the closure of
   [joined] under each root's own final joins.  A multi-instance root
   is never surely finished — [join] only pins one of its instances. *)
let quiesced ctx joined =
  let rec go acc = function
    | [] -> acc
    | rid :: rest ->
        if ISet.mem rid acc then go acc rest
        else
          let r = root_of ctx rid in
          if r.r_multi then go acc rest
          else go (ISet.add rid acc) (ISet.elements r.r_final_joined @ rest)
  in
  go ISet.empty (ISet.elements joined)

let rec ancestor_ids ctx rid = if rid < 0 then [] else rid :: ancestor_ids ctx (root_of ctx rid).r_parent

(* the child of [anc] on [desc]'s ancestor chain *)
let lift_to_child ctx ~anc ~desc =
  let rec go rid =
    let r = root_of ctx rid in
    if r.r_parent = anc then Some r else if r.r_parent < 0 then None else go r.r_parent
  in
  go desc

(* An access in an ancestor root vs. any access in a descendant's
   subtree: concurrent iff the access window can overlap the
   descendant's lifetime. *)
let conc_with_descendant ctx (a : access) desc_root =
  match lift_to_child ctx ~anc:a.a_root ~desc:desc_root with
  | None -> true (* shouldn't happen; stay conservative *)
  | Some c ->
      a.a_seq_hi >= c.r_spawn_seq && not (ISet.mem desc_root (quiesced ctx a.a_joined))

let concurrent ctx (a : access) (b : access) =
  if a.a_root = b.a_root then (root_of ctx a.a_root).r_multi
  else
    let anc_a = ancestor_ids ctx a.a_root and anc_b = ancestor_ids ctx b.a_root in
    if List.mem b.a_root anc_a then conc_with_descendant ctx b a.a_root
    else if List.mem a.a_root anc_b then conc_with_descendant ctx a b.a_root
    else
      (* siblings under the lowest common ancestor *)
      let in_b = ISet.of_list anc_b in
      let lca = List.find (fun id -> ISet.mem id in_b) anc_a in
      let ca = lift_to_child ctx ~anc:lca ~desc:a.a_root in
      let cb = lift_to_child ctx ~anc:lca ~desc:b.a_root in
      let finished_before x prior =
        ISet.mem x (quiesced ctx prior)
      in
      not
        ((match ca with
         | Some ca -> finished_before b.a_root ca.r_prior_joined
         | None -> false)
        || match cb with
           | Some cb -> finished_before a.a_root cb.r_prior_joined
           | None -> false)

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type warning = {
  w_kind : Report.kind;
  w_stack : Loc.t list;
  w_pos : Token.pos;  (** precise span of the racing access *)
  w_site : site;
  w_field : string;
  w_locks : ISet.t;  (** real locks held (bus excluded) *)
  w_counter_kind : Report.kind;
  w_counter_stack : Loc.t list;
  w_counter_pos : Token.pos;
}

(** One abstract access, exported for downstream consumers (the repair
    engine groups these by (site, field) to pick a guard lock). *)
type access_info = {
  ac_kind : Report.kind;
  ac_site : int;
  ac_field : string;
  ac_stack : Loc.t list;
  ac_pos : Token.pos;
  ac_locks : ISet.t;  (** real locks held (bus excluded) *)
  ac_warned : bool;  (** this access participates in some race warning *)
}

type stats = {
  n_roots : int;
  n_accesses : int;
  n_sites : int;
  n_alloc_sites : int;
  n_escaping : int;
  cg_nodes : int;
  cg_edges : int;
  passes : int;
  truncated : bool;
}

type result = {
  warnings : warning list;
  suppressions : Suppression.t list;
  sites : site list;  (** every abstract site (locks, allocations), id order *)
  accesses : access_info list;  (** every recorded access, first-seen order *)
  local_allocs : site list;
  escaping_allocs : site list;
  hint_locs : (string * int) list;
  unreachable : string list;
  stats : stats;
}

let field_desc = function
  | "<vptr>" -> "vptr"
  | "[]" -> "word"
  | f -> Fmt.str "field '%s'" f

let pp_stack ppf stack =
  List.iteri
    (fun i l -> Fmt.pf ppf "   %s %a@\n" (if i = 0 then "at" else "by") Loc.pp l)
    stack

let pp_warning ppf w =
  Fmt.pf ppf "%a (static): %s of %s (%s:%d:%d)@\n" Report.pp_kind w.w_kind
    (field_desc w.w_field) w.w_site.site_desc w.w_pos.Token.file w.w_pos.Token.line
    w.w_pos.Token.col;
  pp_stack ppf w.w_stack;
  Fmt.pf ppf " Conflicts with a concurrent %s:@\n"
    (match w.w_counter_kind with Report.Race_write -> "write" | _ -> "read");
  pp_stack ppf w.w_counter_stack;
  Fmt.pf ppf " Object allocated at %a@\n" Loc.pp w.w_site.site_loc

let take n l =
  let rec go n = function [] -> [] | x :: r -> if n = 0 then [] else x :: go (n - 1) r in
  go n l

let analyse (p : program) : result =
  let cg = Callgraph.build p in
  let ctx =
    { program = p; cg; site_tbl = Hashtbl.create 64; sites = []; next_site = 0;
      heap = Hashtbl.create 64; changed = false; root_tbl = Hashtbl.create 16;
      roots = []; root_by_id = Hashtbl.create 16; acc_tbl = Hashtbl.create 256;
      accs = []; seq = 0; escape_seeds = ISet.empty; benign_sites = ISet.empty;
      truncated = false }
  in
  (* iterate to a heap fixpoint: spawn arguments and field contents
     discovered in one pass feed the points-to facts of the next *)
  let rec passes n =
    ctx.changed <- false;
    run_pass ctx;
    if ctx.changed && n + 1 < max_passes then passes (n + 1)
    else begin
      if ctx.changed then ctx.truncated <- true;
      n + 1
    end
  in
  let n_passes = passes 0 in
  let roots = List.rev ctx.roots in
  let accs = List.rev ctx.accs in
  (* --- thread escape: spawn arguments, stores through unknown
     pointers, closed under the heap --- *)
  let escaped = ref ctx.escape_seeds in
  List.iter
    (fun r ->
      if r.r_id <> 0 then
        List.iter (fun v -> escaped := ISet.union !escaped (obj_sites v)) r.r_args)
    roots;
  let rec close () =
    let before = ISet.cardinal !escaped in
    Hashtbl.iter
      (fun (s, _f) v -> if ISet.mem s !escaped then escaped := ISet.union !escaped (obj_sites v))
      ctx.heap;
    if ISet.cardinal !escaped > before then close ()
  in
  close ();
  let escaped = !escaped in
  (* --- race warnings: conflicting concurrent accesses to an escaping
     site with an empty lockset intersection --- *)
  let warned : (access, access) Hashtbl.t = Hashtbl.create 32 in
  let by_group : (int * string, access list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun a ->
      let k = (a.a_site, a.a_field) in
      Hashtbl.replace by_group k (a :: Option.value ~default:[] (Hashtbl.find_opt by_group k)))
    accs;
  Hashtbl.iter
    (fun (s, _f) group ->
      if ISet.mem s escaped && not (ISet.mem s ctx.benign_sites) then
        let group = List.rev group in
        List.iteri
          (fun i a ->
            List.iteri
              (fun j b ->
                if
                  j > i
                  && (a.a_kind = Awrite || b.a_kind = Awrite)
                  && ISet.is_empty (ISet.inter a.a_locks b.a_locks)
                  && concurrent ctx a b
                then begin
                  if not (Hashtbl.mem warned a) then Hashtbl.replace warned a b;
                  if not (Hashtbl.mem warned b) then Hashtbl.replace warned b a
                end)
              group)
          group)
    by_group;
  let kind_of a = match a.a_kind with Awrite -> Report.Race_write | Aread -> Report.Race_read in
  let seen_sigs = Hashtbl.create 32 in
  let warnings =
    List.filter_map
      (fun a ->
        match Hashtbl.find_opt warned a with
        | None -> None
        | Some b ->
            let sig_key =
              Fmt.str "%s|%s"
                (match a.a_kind with Awrite -> "w" | Aread -> "r")
                (render_stack (take Report.signature_depth a.a_stack))
            in
            if Hashtbl.mem seen_sigs sig_key then None
            else begin
              Hashtbl.replace seen_sigs sig_key ();
              Some
                { w_kind = kind_of a; w_stack = a.a_stack; w_pos = a.a_pos;
                  w_site = site_by_id ctx a.a_site; w_field = a.a_field;
                  w_locks = ISet.remove bus a.a_locks; w_counter_kind = kind_of b;
                  w_counter_stack = b.a_stack; w_counter_pos = b.a_pos }
            end)
      accs
  in
  (* --- suppressions for consistently guarded shared accesses --- *)
  let sup_seen = Hashtbl.create 32 in
  let sup_n = ref 0 in
  let suppressions =
    List.filter_map
      (fun a ->
        if
          ISet.mem a.a_site escaped
          && (not (Hashtbl.mem warned a))
          && not (ISet.is_empty (ISet.remove bus a.a_locks))
        then begin
          let kind = Fmt.str "%a" Report.pp_kind (kind_of a) in
          let key = Fmt.str "%s|%s" kind (render_stack (take Report.signature_depth a.a_stack)) in
          if Hashtbl.mem sup_seen key then None
          else begin
            Hashtbl.replace sup_seen key ();
            incr sup_n;
            Some
              (Suppression.of_frames
                 ~name:(Fmt.str "static-guarded-%d" !sup_n)
                 ~kind ~frames:a.a_stack)
          end
        end
        else None)
      accs
  in
  (* --- locality hints: (file, line) pairs where every allocation site
     is provably non-escaping --- *)
  let all_sites = List.rev ctx.sites in
  let alloc_sites = List.filter (fun s -> s.site_alloc) all_sites in
  let local_allocs = List.filter (fun s -> not (ISet.mem s.site_id escaped)) alloc_sites in
  let escaping_allocs = List.filter (fun s -> ISet.mem s.site_id escaped) alloc_sites in
  let line_ok =
    (* a line is only a hint when no escaping alloc site shares it *)
    let bad = Hashtbl.create 8 in
    List.iter
      (fun s -> Hashtbl.replace bad (s.site_loc.Loc.file, s.site_loc.Loc.line) ())
      escaping_allocs;
    fun s -> not (Hashtbl.mem bad (s.site_loc.Loc.file, s.site_loc.Loc.line))
  in
  let hint_locs =
    List.filter line_ok local_allocs
    |> List.map (fun s -> (s.site_loc.Loc.file, s.site_loc.Loc.line))
    |> List.sort_uniq compare
  in
  let accesses =
    List.map
      (fun a ->
        { ac_kind = kind_of a; ac_site = a.a_site; ac_field = a.a_field;
          ac_stack = a.a_stack; ac_pos = a.a_pos;
          ac_locks = ISet.remove bus a.a_locks; ac_warned = Hashtbl.mem warned a })
      accs
  in
  {
    warnings;
    suppressions;
    sites = all_sites;
    accesses;
    local_allocs;
    escaping_allocs;
    hint_locs;
    unreachable = Callgraph.unreachable_functions cg;
    stats =
      {
        n_roots = List.length roots;
        n_accesses = List.length accs;
        n_sites = List.length all_sites;
        n_alloc_sites = List.length alloc_sites;
        n_escaping = List.length escaping_allocs;
        cg_nodes = List.length (Callgraph.nodes cg);
        cg_edges = Callgraph.n_edges cg;
        passes = n_passes;
        truncated = ctx.truncated;
      };
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_result ppf r =
  List.iter (fun w -> Fmt.pf ppf "%a@\n" pp_warning w) r.warnings;
  Fmt.pf ppf "%d static race warning(s), %d suppression(s) generated@\n"
    (List.length r.warnings) (List.length r.suppressions);
  Fmt.pf ppf "%d allocation site(s): %d thread-local, %d escaping@\n" r.stats.n_alloc_sites
    (List.length r.local_allocs) r.stats.n_escaping;
  (match r.unreachable with
  | [] -> ()
  | fs -> Fmt.pf ppf "unreachable function(s): %s@\n" (String.concat ", " fs));
  if r.stats.truncated then
    Fmt.pf ppf "note: analysis bounds were hit; results are partial@\n"

let loc_json (l : Loc.t) = Json.Str (Loc.to_string l)

let site_json s =
  Json.Obj
    [
      ("id", Json.int s.site_id);
      ("desc", Json.Str s.site_desc);
      ("loc", loc_json s.site_loc);
    ]

let span_json (p : Token.pos) =
  Json.Obj
    [
      ("file", Json.Str p.Token.file);
      ("line", Json.int p.Token.line);
      ("col", Json.int p.Token.col);
    ]

let warning_json w =
  Json.Obj
    [
      ("kind", Json.Str (Fmt.str "%a" Report.pp_kind w.w_kind));
      ("target", Json.Str (field_desc w.w_field));
      ("site", site_json w.w_site);
      ("span", span_json w.w_pos);
      ("stack", Json.List (List.map loc_json w.w_stack));
      ("conflict_kind", Json.Str (Fmt.str "%a" Report.pp_kind w.w_counter_kind));
      ("conflict_span", span_json w.w_counter_pos);
      ("conflict_stack", Json.List (List.map loc_json w.w_counter_stack));
    ]

let to_json ~file r =
  Json.Obj
    [
      ("schema", Json.Str "raceguard-lint/1");
      ("file", Json.Str file);
      ("warnings", Json.List (List.map warning_json r.warnings));
      ("suppressions", Json.List (List.map (fun s -> Json.Str (Suppression.to_string s)) r.suppressions));
      ("local_allocs", Json.List (List.map site_json r.local_allocs));
      ("escaping_allocs", Json.List (List.map site_json r.escaping_allocs));
      ( "hints",
        Json.List
          (List.map
             (fun (f, l) -> Json.Obj [ ("file", Json.Str f); ("line", Json.int l) ])
             r.hint_locs) );
      ("unreachable_functions", Json.List (List.map (fun f -> Json.Str f) r.unreachable));
      ( "stats",
        Json.Obj
          [
            ("roots", Json.int r.stats.n_roots);
            ("accesses", Json.int r.stats.n_accesses);
            ("sites", Json.int r.stats.n_sites);
            ("alloc_sites", Json.int r.stats.n_alloc_sites);
            ("escaping_sites", Json.int r.stats.n_escaping);
            ("callgraph_nodes", Json.int r.stats.cg_nodes);
            ("callgraph_edges", Json.int r.stats.cg_edges);
            ("passes", Json.int r.stats.passes);
            ("truncated", Json.Bool r.stats.truncated);
          ] );
    ]
