(** The SIP proxy / registrar server — the application under test.

    A scaled-down transliteration of the paper's 500 kLOC commercial
    signalling server: thread-per-request (or thread-pool) concurrency,
    shared state behind mutexes and one rw-lock, copy-on-write strings,
    destructor-heavy object traffic — and the real bugs the paper found
    (§4.1) injected and individually toggleable.

    With [config.resilience] set, the server also exercises the
    RFC 3261 recovery paths the chaos matrix stresses: a response cache
    absorbing retransmissions, timer-driven 200 retransmission with
    exponential backoff until ACK, request deadlines, and overload
    shedding with 503 + Retry-After. *)

module Refstring = Raceguard_cxxsim.Refstring
module Allocator = Raceguard_cxxsim.Allocator

type pattern =
  | Per_request  (** one worker thread per datagram (§3.3, Figure 10) *)
  | Pool of int  (** fixed worker pool fed by a queue (§4.2.3, Figure 11) *)

type resilience = {
  res_shed_high_water : int;
      (** pool-queue depth at which the listener sheds with 503 *)
  res_retry_after : int;  (** Retry-After value on shed 503s (ticks) *)
  res_deadline : int;
      (** requests older than this when dequeued are answered 503
          instead of processed; 0 disables the check *)
}

val default_resilience : resilience

type config = {
  annotate : bool;
      (** built with the automatic instrumentation (delete + queue
          annotations); no-ops unless a detector honours them *)
  alloc_mode : Allocator.mode;  (** container allocator strategy (§4) *)
  pattern : pattern;
  enable_watchdog : bool;
      (** B1: the racy home-grown deadlock detector; default off, as
          the authors "disabled it for further experiments" *)
  init_racy : bool;  (** B2: reloader starts before the table is filled *)
  shutdown_racy : bool;  (** B3: Stats destroyed before the logger exits *)
  use_leaked_ref : bool;  (** B4: callers use the Figure-7 accessor *)
  require_auth : bool;
      (** challenge REGISTERs with a digest nonce (401 flow) *)
  domains : string list;
  resilience : resilience option;
      (** [None] = the legacy server (tier-1 behaviour, unchanged);
          [Some _] enables the recovery paths *)
  faults : Raceguard_faults.Injector.t option;
      (** fault injector consulted by the allocator; share the instance
          wired into the transport and engine for one coherent plan *)
  registrar_sharding : Registrar.sharding;
      (** [Unsharded] (the default) keeps the historical single-mutex
          registrar byte-identical; [Sharded] stripes it with online
          rebalance (the T9/T10 storm surface) *)
}

val default_config : config
(** Uninstrumented, direct allocator, thread-per-request, watchdog off,
    bugs B2–B6 present, no resilience, no faults. *)

type t

val start : transport:Transport.t -> config -> t
(** Boot the server (call from inside the VM): statistics, logger,
    registrar, dialog tables, domain data (+ reload thread), routing,
    request history, timer wheel, optional watchdog, listener — plus
    the response cache and resend timer when resilient. *)

val post_stop : t -> unit
(** Ask the listener to stop (send the stop datagram; admin traffic
    bypasses fault injection). *)

val shutdown : t -> unit
(** Join workers and service threads and tear the server down —
    in the racy order when [config.shutdown_racy]. *)

val requests_handled : t -> int
val log_lines : t -> string list

val sheds : t -> int
(** 503s deliberately sent by overload control (high-water + deadline). *)

val cache_hits : t -> int
(** Retransmissions absorbed by the response cache. *)

val retransmits : t -> int
(** Timer-driven 200 retransmissions sent while awaiting ACK. *)

val bound_aors : t -> string list
(** Currently bound AORs (host-side mirror; safe after shutdown) — the
    chaos runner's lost-registration oracle. *)

val registrar_audit : t -> string list
(** {!Registrar.audit} of the server's registrar — the chaos "shards"
    oracle evidence (host-side, safe after shutdown). *)

val registrar_shard_count : t -> int
val registrar_resizes : t -> int
val registrar_migrations : t -> int

(** {1 Exposed for white-box tests} *)

val stop_wire : string
val request_ctx_class : Raceguard_cxxsim.Object_model.class_desc
val extract_domain : string -> string
val extract_user : string -> string
