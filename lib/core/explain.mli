(** Warning provenance: per-warning knob attribution (the [--explain]
    mode).

    Runs the base Helgrind configuration (provenance recording forced
    on) plus one variant per applicable knob — hwlc / dr / segments /
    hb — on the {e same} VM event stream, then marks each base warning
    with the knobs whose variant no longer reports its signature.
    Exact, not statistical: every variant sees the identical
    schedule. *)

module Det = Raceguard_detector
module Sip = Raceguard_sip

type knob = {
  k_name : string;
  k_doc : string;
  k_applicable : Det.Helgrind.config -> bool;
  k_apply : Det.Helgrind.config -> Det.Helgrind.config;
}

val knobs : knob list
(** hwlc, dr, segments, hb. *)

type explained = {
  e_report : Det.Report.t;
      (** first occurrence, with [provenance.p_suppressed_by] filled *)
  e_count : int;
  e_suppressed_by : string list;
}

type t = {
  x_test : string;
  x_base : Det.Helgrind.config;
  x_knobs : string list;  (** the knobs that were attributable *)
  x_seed : int;
  x_domains : int;  (** resolved worker-domain count the rerun used *)
  x_warnings : explained list;
  x_result : Runner.result;
}

val test_case_of_string : string -> Sip.Workload.test_case option
(** Case-insensitive lookup among T1–T8. *)

val run :
  ?runner:Runner.config ->
  ?base:Det.Helgrind.config ->
  ?domains:int ->
  Sip.Workload.test_case ->
  t
(** [base] defaults to the paper's Original configuration (so hwlc and
    dr are attributable).  Pass [runner] to control seed / policy /
    tracer.  [domains] (default 1; 0 = auto) runs each configuration
    as its own cell on the work-stealing pool — the VM is
    deterministic, so warnings and attribution are identical to the
    sequential side-by-side run; only the metrics snapshot (merged
    across cells) reflects the extra VM replays. *)

val pp : Format.formatter -> t -> unit
(** Human rendering: each warning with its Valgrind-style report, its
    shadow-state history, and the suppressing knobs. *)

val to_json : t -> Raceguard_obs.Json.t
(** Machine-readable form ([raceguard-explain/1] schema): base config
    echo, per-warning report + provenance + suppressing knobs, and the
    run's metrics snapshot. *)
