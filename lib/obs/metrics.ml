(** Metrics registry: named counters, gauges and log2-bucket
    histograms.

    Design constraints, in order:

    - The hot path (detector per-access code, VM event dispatch) must
      pay one [t.v <- t.v + 1] per increment — no hashing, no
      allocation.  Handles are therefore created once (registration
      hashes the name) and incremented through a mutable record field.
    - Runs happen back-to-back in one process (bench rows, the runner's
      multi-config sweeps), so consumers need per-run deltas from
      process-global counters: [snapshot] + [diff].
    - Merging snapshots from independent runs must be associative and
      commutative so aggregation order can't change results (tested by
      qcheck in [test/test_obs.ml]): counters and histogram buckets
      add; gauges keep the max.

    Histograms bucket by log2: value [v] lands in bucket
    [bucket_of_value v]; bucket [i] covers [2^(i-1) .. 2^i - 1] (bucket
    0 covers values <= 0 — nothing in this codebase records negatives,
    they are clamped). *)

let buckets = 64

type counter = { c_name : string; mutable c_v : int }
type gauge = { g_name : string; mutable g_v : int }
type histogram = { h_name : string; h_buckets : int array; mutable h_count : int; mutable h_sum : int }

type registry = {
  mutable counters : counter list;
  mutable gauges : gauge list;
  mutable histograms : histogram list;
  tbl : (string, unit) Hashtbl.t; (* duplicate-name guard *)
}

let create () = { counters = []; gauges = []; histograms = []; tbl = Hashtbl.create 64 }

(* One process-wide registry.  Library code registers its instruments
   here at module-init or first use; consumers take before/after
   snapshots and [diff] them. *)
let default = create ()

let check_fresh r name =
  if Hashtbl.mem r.tbl name then
    invalid_arg (Printf.sprintf "Obs.Metrics: duplicate instrument %S" name);
  Hashtbl.replace r.tbl name ()

let counter ?(registry = default) name =
  check_fresh registry name;
  let c = { c_name = name; c_v = 0 } in
  registry.counters <- c :: registry.counters;
  c

let gauge ?(registry = default) name =
  check_fresh registry name;
  let g = { g_name = name; g_v = 0 } in
  registry.gauges <- g :: registry.gauges;
  g

let histogram ?(registry = default) name =
  check_fresh registry name;
  let h = { h_name = name; h_buckets = Array.make buckets 0; h_count = 0; h_sum = 0 } in
  registry.histograms <- h :: registry.histograms;
  h

let incr c = c.c_v <- c.c_v + 1
let add c n = c.c_v <- c.c_v + n
let counter_value c = c.c_v
let set g v = g.g_v <- v
let gauge_value g = g.g_v

let bucket_of_value v =
  if v <= 0 then 0
  else
    (* index of the highest set bit, + 1; v=1 -> 1, v=2..3 -> 2, ... *)
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
    min (buckets - 1) (go v 0)

let observe h v =
  let v = max 0 v in
  let b = bucket_of_value v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_data = { buckets : int array; count : int; sum : int }

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * int) list;
  s_histograms : (string * hist_data) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot ?(registry = default) () =
  {
    s_counters = List.sort by_name (List.map (fun c -> (c.c_name, c.c_v)) registry.counters);
    s_gauges = List.sort by_name (List.map (fun g -> (g.g_name, g.g_v)) registry.gauges);
    s_histograms =
      List.sort by_name
        (List.map
           (fun h ->
             (h.h_name, { buckets = Array.copy h.h_buckets; count = h.h_count; sum = h.h_sum }))
           registry.histograms);
  }

let empty = { s_counters = []; s_gauges = []; s_histograms = [] }

(* Merge two sorted assoc lists with a per-value combiner; names in
   either side survive.  Keeping the result sorted keeps merge
   associative/commutative structurally. *)
let rec merge_assoc f xs ys =
  match (xs, ys) with
  | [], l | l, [] -> l
  | (kx, vx) :: xs', (ky, vy) :: ys' ->
      let c = String.compare kx ky in
      if c = 0 then (kx, f vx vy) :: merge_assoc f xs' ys'
      else if c < 0 then (kx, vx) :: merge_assoc f xs' ys
      else (ky, vy) :: merge_assoc f xs ys'

let merge_hist a b =
  {
    buckets = Array.init buckets (fun i -> a.buckets.(i) + b.buckets.(i));
    count = a.count + b.count;
    sum = a.sum + b.sum;
  }

let merge a b =
  {
    s_counters = merge_assoc ( + ) a.s_counters b.s_counters;
    s_gauges = merge_assoc max a.s_gauges b.s_gauges;
    s_histograms = merge_assoc merge_hist a.s_histograms b.s_histograms;
  }

(* [diff ~before after]: per-run delta of the monotonic instruments.
   Counters and histogram buckets subtract (clamped at 0 in case an
   instrument was registered between the snapshots); gauges keep the
   [after] level — a gauge is a level, not a rate. *)
let diff ~before after =
  let sub_c name v = v - (match List.assoc_opt name before.s_counters with Some b -> b | None -> 0) in
  let sub_h name (h : hist_data) =
    match List.assoc_opt name before.s_histograms with
    | None -> h
    | Some b ->
        {
          buckets = Array.init buckets (fun i -> max 0 (h.buckets.(i) - b.buckets.(i)));
          count = max 0 (h.count - b.count);
          sum = max 0 (h.sum - b.sum);
        }
  in
  {
    s_counters = List.map (fun (k, v) -> (k, max 0 (sub_c k v))) after.s_counters;
    s_gauges = after.s_gauges;
    s_histograms = List.map (fun (k, h) -> (k, sub_h k h)) after.s_histograms;
  }

let find_counter s name = List.assoc_opt name s.s_counters
let find_gauge s name = List.assoc_opt name s.s_gauges

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let hist_to_json h =
  (* Sparse bucket encoding: [[bucket, count], ...] for non-empty
     buckets only, so 64 mostly-zero slots don't bloat the output. *)
  let bs = ref [] in
  for i = buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then bs := Json.List [ Json.int i; Json.int h.buckets.(i) ] :: !bs
  done;
  Json.Obj [ ("count", Json.int h.count); ("sum", Json.int h.sum); ("buckets", Json.List !bs) ]

let to_json s =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) s.s_counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) s.s_gauges));
      ("histograms", Json.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) s.s_histograms));
    ]

let pp ppf s =
  let non_zero = List.filter (fun (_, v) -> v <> 0) in
  Fmt.pf ppf "@[<v>";
  List.iter (fun (k, v) -> Fmt.pf ppf "%-44s %d@," k v) (non_zero s.s_counters);
  List.iter (fun (k, v) -> Fmt.pf ppf "%-44s %d@," k v) (non_zero s.s_gauges);
  List.iter
    (fun (k, h) ->
      if h.count > 0 then
        Fmt.pf ppf "%-44s count=%d sum=%d mean=%.1f@," k h.count h.sum
          (float_of_int h.sum /. float_of_int h.count))
    s.s_histograms;
  Fmt.pf ppf "@]"
