test/test_hb.ml: Alcotest Hashtbl List Printf QCheck2 QCheck_alcotest Raceguard Raceguard_detector Raceguard_sip Raceguard_util Raceguard_vm
