(** The MiniC++ front end — the user-facing rendering of the paper's
    Figure 3 debugging process:

    {v
    raceguard-minicc check file.mcc                # parse + semantic checks
    raceguard-minicc annotate file.mcc             # print the instrumented source
    raceguard-minicc lint file.mcc [--json]        # static lockset/escape analysis
    raceguard-minicc run file.mcc [options]        # execute under the detector
    v}

    Options for [run]:
    [--seed N] scheduler seed, [--no-annotate] uninstrumented build,
    [--config original|hwlc|hwlc+dr|hwlc+dr+hb], [--djit] add the
    vector-clock baseline, [--lock-order] add deadlock prediction,
    [--gen-suppressions] print a paste-ready suppression per report,
    [--suppressions FILE] load a suppression file, [--static-hints]
    feed the static analysis' thread-locality hints to the detector's
    fast path.

    Options for [lint]: [--json] the raceguard-lint/1 document,
    [--cross-check] also run the program dynamically and classify each
    finding confirmed / static-only / dynamic-only. *)

open Cmdliner
module M = Raceguard_minicc
module Det = Raceguard_detector
module Vm = Raceguard_vm

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  let src = read_file path in
  let pp = M.Preprocess.with_builtins () in
  (path, src, pp)

let handle_front_end_errors f =
  match f () with
  | v -> `Ok v
  | exception M.Lexer.Error (msg, pos) ->
      `Error (false, Fmt.str "lex error: %s at %a" msg M.Token.pp_pos pos)
  | exception M.Parser.Error (msg, pos) ->
      `Error (false, Fmt.str "parse error: %s at %a" msg M.Token.pp_pos pos)
  | exception M.Check.Error (msg, pos) ->
      `Error (false, Fmt.str "semantic error: %s at %a" msg M.Token.pp_pos pos)
  | exception M.Preprocess.Error msg -> `Error (false, "preprocess error: " ^ msg)
  | exception Sys_error msg -> `Error (false, msg)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mcc" ~doc:"MiniC++ source file")

(* --- check ---------------------------------------------------------- *)

let check_cmd =
  let run path =
    handle_front_end_errors @@ fun () ->
    let file, src, pp = load path in
    let ast = M.Preprocess.parse pp ~file src in
    M.Check.check ast;
    Printf.printf "%s: %d class(es), %d function(s), %d un-annotated delete(s)\n" file
      (List.length (M.Ast.classes ast))
      (List.length (M.Ast.functions ast))
      (M.Annotate.unannotated_deletes ast)
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and semantically check a program.")
    Term.(ret (const run $ file_arg))

(* --- annotate -------------------------------------------------------- *)

let annotate_cmd =
  let run path =
    handle_front_end_errors @@ fun () ->
    let file, src, pp = load path in
    let ast = M.Preprocess.parse pp ~file src in
    M.Check.check ast;
    let ast, n = M.Annotate.annotate ast in
    Printf.eprintf "%d delete(s) annotated\n%!" n;
    print_string
      (M.Pretty.program ~header_comment:"// instrumented build\n#include \"valgrind/helgrind.h\"" ast)
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:"Run the automatic source annotation pass and print the result (Figure 4).")
    Term.(ret (const run $ file_arg))

(* --- lint ------------------------------------------------------------- *)

(** One plain hwlc+dr run of the already-checked source, for
    [--cross-check]. *)
let dynamic_reports ~seed ~file ~src =
  let pp = M.Preprocess.with_builtins () in
  let interp, _pretty, _n = M.Interp.compile ~annotate:true ~preprocessor:pp ~file src in
  let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
  let helgrind = Det.Helgrind.create Det.Helgrind.hwlc_dr in
  Vm.Engine.add_tool vm (Det.Helgrind.tool helgrind);
  let (_ : Vm.Engine.outcome) = Vm.Engine.run vm (fun () -> M.Interp.run_main interp) in
  Det.Helgrind.reports helgrind

let lint_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the machine-readable raceguard-lint/1 JSON document.")
  in
  let cross_check =
    Arg.(
      value & flag
      & info [ "cross-check" ]
          ~doc:
            "Also execute the program once under the dynamic detector (hwlc+dr) and classify \
             each finding as confirmed, static-only or dynamic-only by report signature.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed for $(b,--cross-check).")
  in
  let cross_seeds =
    Arg.(
      value
      & opt (list int) []
      & info [ "cross-seeds" ] ~docv:"N,M,..."
          ~doc:
            "Replay $(b,--cross-check) under each of these scheduler seeds and compare the \
             static findings against the union of the dynamic signatures (more schedules \
             shrink the static-only bucket).  Defaults to just $(b,--seed).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for the per-seed replays (1 = sequential, 0 = auto).  Verdicts \
             are identical for any value.")
  in
  let run path json cross_check seed cross_seeds domains =
    let go () =
      let file, src, pp = load path in
      let ast = M.Preprocess.parse pp ~file src in
      match M.Check.check_all ast with
      | _ :: _ as diags ->
          List.iter
            (fun (msg, pos) -> Fmt.epr "semantic error: %s at %a@." msg M.Token.pp_pos pos)
            diags;
          `Error (false, Fmt.str "%d semantic error(s) in %s" (List.length diags) file)
      | [] ->
          let result = M.Static_race.analyse ast in
          let cc =
            if cross_check || cross_seeds <> [] then
              let seeds = if cross_seeds = [] then [ seed ] else cross_seeds in
              Some
                (Raceguard.Static_dyn.cross_check_seeds ~domains ~static:result
                   ~run:(fun seed -> dynamic_reports ~seed ~file ~src)
                   seeds)
            else None
          in
          (if json then
             let module Json = Raceguard_obs.Json in
             let doc = M.Static_race.to_json ~file result in
             let doc =
               match (doc, cc) with
               | Json.Obj fields, Some c ->
                   Json.Obj (fields @ [ ("cross_check", Raceguard.Static_dyn.to_json c) ])
               | _ -> doc
             in
             print_endline (Json.to_string ~indent:2 doc)
           else begin
             Fmt.pr "%a" M.Static_race.pp_result result;
             match cc with None -> () | Some c -> Fmt.pr "@.%a" Raceguard.Static_dyn.pp c
           end);
          `Ok ()
    in
    match handle_front_end_errors go with `Ok r -> r | `Error _ as e -> e
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static lockset & thread-escape analysis: interprocedural must-locksets, fork-join \
          ordering and escape closure, without executing the program.")
    Term.(ret (const run $ file_arg $ json $ cross_check $ seed $ cross_seeds $ domains))

(* --- run -------------------------------------------------------------- *)

let config_conv =
  let parse = function
    | "original" -> Ok Det.Helgrind.original
    | "hwlc" -> Ok Det.Helgrind.hwlc
    | "hwlc+dr" -> Ok Det.Helgrind.hwlc_dr
    | "hwlc+dr+hb" -> Ok Det.Helgrind.hwlc_dr_hb
    | "pure-eraser" -> Ok Det.Helgrind.pure_eraser
    | s -> Error (`Msg ("unknown configuration " ^ s))
  in
  let print ppf c = Det.Helgrind.pp_config_name ppf c in
  Arg.conv (parse, print)

let run_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.") in
  let no_annotate =
    Arg.(value & flag & info [ "no-annotate" ] ~doc:"Build without the delete annotation.")
  in
  let config =
    Arg.(
      value
      & opt config_conv Det.Helgrind.hwlc_dr
      & info [ "config" ] ~doc:"Detector configuration: original | hwlc | hwlc+dr | hwlc+dr+hb | pure-eraser.")
  in
  let djit = Arg.(value & flag & info [ "djit" ] ~doc:"Also run the DJIT vector-clock baseline.") in
  let lock_order =
    Arg.(value & flag & info [ "lock-order" ] ~doc:"Also run lock-order deadlock prediction.")
  in
  let gen_suppressions =
    Arg.(value & flag & info [ "gen-suppressions" ] ~doc:"Print a suppression per location.")
  in
  let suppressions_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "suppressions" ] ~docv:"FILE" ~doc:"Load a suppression file.")
  in
  let static_hints =
    Arg.(
      value & flag
      & info [ "static-hints" ]
          ~doc:
            "Run the static analysis first and pre-mark its provably thread-local allocation \
             sites in the detector, so their words keep the shadow fast path across segment \
             advances.  Reports are unchanged; the fast-path hit rate rises.")
  in
  let run path seed no_annotate config djit lock_order gen_suppressions suppressions_file
      static_hints =
    handle_front_end_errors @@ fun () ->
    let file, src, pp = load path in
    let suppressions =
      match suppressions_file with
      | None -> []
      | Some f -> Det.Suppression.parse_string (read_file f)
    in
    let interp, _pretty, n_annotated =
      M.Interp.compile ~annotate:(not no_annotate) ~preprocessor:pp ~file src
    in
    let vm = Vm.Engine.create ~config:{ Vm.Engine.default_config with seed } () in
    let helgrind = Det.Helgrind.create ~suppressions config in
    Vm.Engine.add_tool vm (Det.Helgrind.tool helgrind);
    if static_hints then begin
      (* compile already checked this source; a fresh parse feeds the
         static pass, whose hint sites are (file, line)s of allocations *)
      let ast = M.Preprocess.parse (M.Preprocess.with_builtins ()) ~file src in
      let sr = M.Static_race.analyse ast in
      Det.Helgrind.set_static_hints helgrind sr.M.Static_race.hint_locs;
      Printf.eprintf "static hints: %d thread-local allocation site(s)\n%!"
        (List.length sr.M.Static_race.hint_locs)
    end;
    let djit_t =
      if djit then begin
        let d = Det.Djit.create ~suppressions () in
        Vm.Engine.add_tool vm (Det.Djit.tool d);
        Some d
      end
      else None
    in
    let lo_t =
      if lock_order then begin
        let l = Det.Lock_order.create ~suppressions () in
        Vm.Engine.add_tool vm (Det.Lock_order.tool l);
        Some l
      end
      else None
    in
    let outcome = Vm.Engine.run vm (fun () -> M.Interp.run_main interp) in
    List.iter (fun line -> print_endline line) (M.Interp.output interp);
    Printf.printf "== %s: %d ops, %d thread(s), %d delete(s) annotated ==\n" file
      outcome.stats.ops_executed outcome.stats.threads_created n_annotated;
    List.iter
      (fun (tid, name, e) ->
        Printf.printf "thread %d (%s) raised: %s\n" tid name (Printexc.to_string e))
      outcome.failures;
    (match outcome.deadlock with
    | Some d -> Fmt.pr "%a" Vm.Engine.pp_deadlock d
    | None -> ());
    let print_reports title locations =
      Printf.printf "\n%s: %d location(s)\n" title (List.length locations);
      List.iter
        (fun ((r : Det.Report.t), n) ->
          Fmt.pr "[%d occurrence(s)] %a@." n Det.Report.pp r;
          if gen_suppressions then
            print_string
              (Det.Suppression.to_string
                 (Det.Suppression.of_frames ~name:"<insert-a-name-here>"
                    ~kind:(Fmt.str "%a" Det.Report.pp_kind r.kind)
                    ~frames:r.stack)))
        locations
    in
    print_reports
      (Fmt.str "%a" Det.Helgrind.pp_config_name config)
      (Det.Helgrind.locations helgrind);
    (match djit_t with
    | Some d -> print_reports "DJIT" (Det.Djit.locations d)
    | None -> ());
    (match lo_t with
    | Some l -> print_reports "lock-order" (Det.Lock_order.locations l)
    | None -> ());
    if Det.Report.suppressed_count (Det.Helgrind.collector helgrind) > 0 then
      Printf.printf "\n(%d occurrence(s) suppressed)\n"
        (Det.Report.suppressed_count (Det.Helgrind.collector helgrind))
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a program on the VM under the race detector.")
    Term.(
      ret
        (const run $ file_arg $ seed $ no_annotate $ config $ djit $ lock_order
       $ gen_suppressions $ suppressions_file $ static_hints))

let () =
  let info =
    Cmd.info "raceguard-minicc" ~version:"0.9"
      ~doc:"MiniC++ front end for the RaceGuard detector (Figure 3 pipeline)."
  in
  exit (Cmd.eval (Cmd.group info [ check_cmd; annotate_cmd; lint_cmd; run_cmd ]))
