(** The SIP proxy / registrar server — the application under test.

    A scaled-down transliteration of the paper's 500 kLOC commercial
    signalling server: thread-per-request (or thread-pool) concurrency,
    shared state behind mutexes and one rw-lock, copy-on-write strings,
    destructor-heavy object traffic — and the real bugs the paper found
    (§4.1) injected and individually toggleable. *)

module Refstring = Raceguard_cxxsim.Refstring
module Allocator = Raceguard_cxxsim.Allocator

type pattern =
  | Per_request  (** one worker thread per datagram (§3.3, Figure 10) *)
  | Pool of int  (** fixed worker pool fed by a queue (§4.2.3, Figure 11) *)

type config = {
  annotate : bool;
      (** built with the automatic instrumentation (delete + queue
          annotations); no-ops unless a detector honours them *)
  alloc_mode : Allocator.mode;  (** container allocator strategy (§4) *)
  pattern : pattern;
  enable_watchdog : bool;
      (** B1: the racy home-grown deadlock detector; default off, as
          the authors "disabled it for further experiments" *)
  init_racy : bool;  (** B2: reloader starts before the table is filled *)
  shutdown_racy : bool;  (** B3: Stats destroyed before the logger exits *)
  use_leaked_ref : bool;  (** B4: callers use the Figure-7 accessor *)
  require_auth : bool;
      (** challenge REGISTERs with a digest nonce (401 flow) *)
  domains : string list;
}

val default_config : config
(** Uninstrumented, direct allocator, thread-per-request, watchdog off,
    bugs B2–B6 present. *)

type t

val start : transport:Transport.t -> config -> t
(** Boot the server (call from inside the VM): statistics, logger,
    registrar, dialog tables, domain data (+ reload thread), routing,
    request history, timer wheel, optional watchdog, listener. *)

val post_stop : t -> unit
(** Ask the listener to stop (send the stop datagram). *)

val shutdown : t -> unit
(** Join workers and service threads and tear the server down —
    in the racy order when [config.shutdown_racy]. *)

val requests_handled : t -> int
val log_lines : t -> string list

(** {1 Exposed for white-box tests} *)

val stop_wire : string
val request_ctx_class : Raceguard_cxxsim.Object_model.class_desc
val extract_domain : string -> string
val extract_user : string -> string
