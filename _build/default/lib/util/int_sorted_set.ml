(** Small immutable integer sets as sorted arrays.

    Lock-sets are tiny (usually 0–3 elements) and the hot operation is
    intersection, so a sorted [int array] beats a balanced tree both in
    constant factor and in memory.  All operations return fresh arrays
    and never mutate their inputs. *)

type t = int array

let empty : t = [||]

let is_empty (t : t) = Array.length t = 0

let cardinal (t : t) = Array.length t

let mem x (t : t) =
  (* binary search *)
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if t.(mid) = x then true else if t.(mid) < x then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length t)

let of_list l : t =
  let a = Array.of_list (List.sort_uniq compare l) in
  a

let to_list (t : t) = Array.to_list t

let singleton x : t = [| x |]

let add x (t : t) : t =
  if mem x t then t
  else begin
    let n = Array.length t in
    let r = Array.make (n + 1) x in
    let i = ref 0 in
    while !i < n && t.(!i) < x do
      r.(!i) <- t.(!i);
      incr i
    done;
    r.(!i) <- x;
    Array.blit t !i r (!i + 1) (n - !i);
    r
  end

let remove x (t : t) : t =
  if not (mem x t) then t
  else begin
    let n = Array.length t in
    let r = Array.make (n - 1) 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if t.(i) <> x then begin
        r.(!j) <- t.(i);
        incr j
      end
    done;
    r
  end

let inter (a : t) (b : t) : t =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then empty
  else begin
    let buf = Array.make (min na nb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na && !j < nb do
      if a.(!i) = b.(!j) then begin
        buf.(!k) <- a.(!i);
        incr k;
        incr i;
        incr j
      end
      else if a.(!i) < b.(!j) then incr i
      else incr j
    done;
    if !k = min na nb then buf else Array.sub buf 0 !k
  end

let union (a : t) (b : t) : t =
  of_list (Array.to_list a @ Array.to_list b)

let equal (a : t) (b : t) = a = b

let subset (a : t) (b : t) = Array.for_all (fun x -> mem x b) a

let pp pp_elt ppf (t : t) =
  Fmt.pf ppf "{%a}" Fmt.(array ~sep:(any ", ") pp_elt) t
