(** Call graph for MiniC++ programs.

    Nodes are free functions, methods and destructors; edges are the
    syntactic call/spawn/delete relations, with virtual dispatch
    resolved conservatively (an edge to {e every} class defining the
    called method) and [delete] edged to every destructor (the static
    analogue of the vptr-driven destructor chain).  Roots are [main]
    and every [Spawn] target, which is exactly the set of places a
    thread can start executing.

    The graph feeds {!Static_race}: recursion detection bounds the
    interprocedural walk, and the "may alter locks" summary tells the
    walk how to havoc a call it refuses to inline — a function that
    (transitively) uses the {e unbalanced} lock builtins
    ([mutex_lock]/[mutex_unlock]/[rdlock]/[wrlock]/[rw_unlock]) can
    change the caller's held-lock set across the call, while one that
    only uses scoped [lock (m) { ... }] blocks cannot. *)

open Ast

type node =
  | Func of string
  | Method of string * string  (** class, method *)
  | Dtor of string  (** class *)

let node_name = function
  | Func f -> f
  | Method (c, m) -> c ^ "::" ^ m
  | Dtor c -> c ^ "::~" ^ c

let compare_node a b = compare a b

module Node_set = Set.Make (struct
  type t = node

  let compare = compare_node
end)

module Node_map = Map.Make (struct
  type t = node

  let compare = compare_node
end)

type t = {
  nodes : node list;  (** declaration order *)
  edges : Node_set.t Node_map.t;
  roots : node list;  (** [main] first, then spawn targets in source order *)
  unbalanced_locks : Node_set.t;  (** nodes using unbalanced lock builtins directly *)
}

(* the lock builtins whose effect outlives the statement *)
let unbalanced_lock_builtins =
  [ "mutex_lock"; "mutex_unlock"; "rdlock"; "wrlock"; "rw_unlock" ]

let body_of p = function
  | Func f -> ( match find_function p f with Some f -> f.fn_body | None -> [])
  | Method (c, m) -> (
      match find_class p c with
      | Some c -> (
          match List.find_opt (fun f -> f.fn_name = m) c.cls_methods with
          | Some f -> f.fn_body
          | None -> [])
      | None -> [])
  | Dtor c -> (
      match find_class p c with
      | Some c -> Option.value ~default:[] c.cls_dtor
      | None -> [])

let build (p : program) =
  let classes = classes p in
  let methods_named m =
    List.filter_map
      (fun c -> if List.exists (fun f -> f.fn_name = m) c.cls_methods then Some (Method (c.cls_name, m)) else None)
      classes
  in
  let dtors = List.filter_map (fun c -> if c.cls_dtor <> None then Some (Dtor c.cls_name) else None) classes in
  let nodes =
    List.concat_map
      (function
        | Dfn f -> [ Func f.fn_name ]
        | Dclass c ->
            List.map (fun m -> Method (c.cls_name, m.fn_name)) c.cls_methods
            @ if c.cls_dtor <> None then [ Dtor c.cls_name ] else [])
      p.decls
  in
  let edges = ref Node_map.empty in
  let unbalanced = ref Node_set.empty in
  let spawn_targets = ref [] in
  let add_edge src dst =
    edges :=
      Node_map.update src
        (function None -> Some (Node_set.singleton dst) | Some s -> Some (Node_set.add dst s))
        !edges
  in
  let rec walk_expr src (e : expr) =
    match e.e with
    | Int _ | Str _ | Null | Var _ | This -> ()
    | Field (o, _) -> walk_expr src o
    | Binop (_, a, b) ->
        walk_expr src a;
        walk_expr src b
    | Unop (_, a) -> walk_expr src a
    | Call (name, args) ->
        List.iter (walk_expr src) args;
        if List.mem name unbalanced_lock_builtins then unbalanced := Node_set.add src !unbalanced;
        if find_function p name <> None then add_edge src (Func name)
    | Method_call (o, m, args) ->
        walk_expr src o;
        List.iter (walk_expr src) args;
        List.iter (add_edge src) (methods_named m)
    | New _ -> ()
    | Spawn (f, args) ->
        List.iter (walk_expr src) args;
        if find_function p f <> None then begin
          add_edge src (Func f);
          if not (List.mem (Func f) !spawn_targets) then spawn_targets := Func f :: !spawn_targets
        end
    | Deletor inner ->
        walk_expr src inner;
        List.iter (add_edge src) dtors
  and walk_stmt src (s : stmt) =
    match s.s with
    | Var_decl (_, e) | Expr e | Return (Some e) -> walk_expr src e
    | Assign (Lvar _, e) -> walk_expr src e
    | Assign (Lfield (o, _, _), e) ->
        walk_expr src o;
        walk_expr src e
    | If (c, a, b) ->
        walk_expr src c;
        List.iter (walk_stmt src) a;
        List.iter (walk_stmt src) b
    | While (c, b) ->
        walk_expr src c;
        List.iter (walk_stmt src) b
    | Return None -> ()
    | Delete e ->
        walk_expr src e;
        List.iter (add_edge src) dtors
    | Lock (m, b) ->
        walk_expr src m;
        List.iter (walk_stmt src) b
    | Block b -> List.iter (walk_stmt src) b
  in
  List.iter (fun n -> List.iter (walk_stmt n) (body_of p n)) nodes;
  let roots =
    (if find_function p "main" <> None then [ Func "main" ] else []) @ List.rev !spawn_targets
  in
  { nodes; edges = !edges; roots; unbalanced_locks = !unbalanced }

let nodes t = t.nodes
let roots t = t.roots

let callees t n =
  match Node_map.find_opt n t.edges with None -> [] | Some s -> Node_set.elements s

let n_edges t = Node_map.fold (fun _ s acc -> acc + Node_set.cardinal s) t.edges 0

(* forward reachability from a seed set *)
let closure t seeds =
  let rec go seen = function
    | [] -> seen
    | n :: rest ->
        if Node_set.mem n seen then go seen rest
        else go (Node_set.add n seen) (callees t n @ rest)
  in
  go Node_set.empty seeds

let reachable t = Node_set.elements (closure t t.roots)

let unreachable_functions t =
  let reach = closure t t.roots in
  List.filter_map
    (function
      | Func f when not (Node_set.mem (Func f) reach) -> Some f
      | _ -> None)
    t.nodes

(** [n] participates in a call cycle (including self-recursion). *)
let may_recurse t n =
  let rec go seen = function
    | [] -> false
    | x :: rest ->
        if compare_node x n = 0 then true
        else if Node_set.mem x seen then go seen rest
        else go (Node_set.add x seen) (callees t x @ rest)
  in
  go Node_set.empty (callees t n)

(** [n] or a transitive callee uses an unbalanced lock builtin, i.e. a
    call to [n] can change the caller's held-lock set. *)
let may_alter_locks t n =
  let reach = closure t [ n ] in
  not (Node_set.is_empty (Node_set.inter reach t.unbalanced_locks))

let pp ppf t =
  List.iter
    (fun n ->
      match callees t n with
      | [] -> ()
      | cs -> Fmt.pf ppf "%s -> %s@\n" (node_name n) (String.concat ", " (List.map node_name cs)))
    t.nodes
