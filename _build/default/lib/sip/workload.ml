(** The SIPp stand-in: scripted UAC drivers and the eight test cases.

    "The basic request patterns are delivered to the application by an
    automated test suite.  The main utility of this test suite is SIPp,
    a tool for SIP load testing." (§3.3)

    Each driver runs as a VM thread with its own transport endpoint: it
    sends scripted requests, waits for the responses, and records an
    oracle verdict (host-side) so the functional behaviour of the
    server is checked on every detector run.  Test cases T1–T8 mix the
    scenarios differently, which is why their warning-location counts
    differ (Figure 6). *)

module Loc = Raceguard_util.Loc
module Api = Raceguard_vm.Api

let lc func line = Loc.v "sipp_driver.cpp" func line

type driver = {
  d_name : string;
  transport : Transport.t;
  endpoint : Transport.endpoint;
  mutable failures : string list;  (** oracle violations (host side) *)
  mutable responses : int;
}

let make_driver ~transport name =
  { d_name = name; transport; endpoint = Transport.endpoint transport name; failures = []; responses = 0 }

let send d wire = Transport.send d.transport ~src:d.d_name ~dst:"server" wire

(** Wait for one response and check its status code. *)
let expect d ?(among = []) status =
  let _src, buf, len = Transport.recv d.transport d.endpoint in
  let wire = Transport.read_buffer buf len in
  Api.free ~loc:(lc "expect" 36) buf;
  d.responses <- d.responses + 1;
  let ok =
    match Sip_msg.wire_status wire with
    | Some s -> s = status || List.mem s among
    | None -> false
  in
  if not ok then
    d.failures <-
      Printf.sprintf "%s: expected %d, got %s" d.d_name status
        (String.concat " | " (String.split_on_char '\r' (String.concat "" (String.split_on_char '\n' wire))))
      :: d.failures

(** Wait for one response and return its wire text (for flows that need
    header contents, e.g. the digest challenge). *)
let recv_response d =
  let _src, buf, len = Transport.recv d.transport d.endpoint in
  let wire = Transport.read_buffer buf len in
  Api.free ~loc:(lc "recv_response" 50) buf;
  d.responses <- d.responses + 1;
  wire

let request ~meth ~uri ~from ~to_ ~call_id ~cseq ?(contact = "") ?(expires = -1) ?(auth = 0) () =
  Sip_msg.request_to_wire
    { w_meth = meth; w_uri = uri; w_from = from; w_to = to_; w_call_id = call_id; w_cseq = cseq;
      w_contact = contact; w_expires = expires; w_auth = auth }

(* --- scenario building blocks ------------------------------------- *)

let aor user domain = Printf.sprintf "sip:%s@%s" user domain

let do_register d ~user ~domain ~cseq ?(expires = 3600) () =
  let a = aor user domain in
  send d
    (request ~meth:Sip_msg.REGISTER ~uri:("sip:" ^ domain) ~from:a ~to_:a
       ~call_id:(Printf.sprintf "reg-%s-%d" user cseq) ~cseq
       ~contact:(Printf.sprintf "sip:%s@10.0.0.%d:5060" user (1 + (cseq mod 250)))
       ~expires ());
  expect d 200

let do_unregister d ~user ~domain ~cseq =
  ignore (do_register d ~user ~domain ~cseq ~expires:0 ())

(** Registration against a server with [require_auth]: expect the 401
    challenge, compute the digest from the nonce, retry. *)
let do_register_auth d ~user ~domain ~cseq =
  let a = aor user domain in
  let contact = Printf.sprintf "sip:%s@10.0.1.%d:5060" user (1 + (cseq mod 250)) in
  let reg ?auth () =
    request ~meth:Sip_msg.REGISTER ~uri:("sip:" ^ domain) ~from:a ~to_:a
      ~call_id:(Printf.sprintf "rega-%s-%d" user cseq) ~cseq ~contact ?auth ()
  in
  send d (reg ());
  let challenge = recv_response d in
  match Sip_msg.wire_status challenge with
  | Some 401 -> (
      match Sip_msg.wire_header challenge "WWW-Authenticate" with
      | Some h -> (
          match String.index_opt h '=' with
          | Some i -> (
              match int_of_string_opt (String.trim (String.sub h (i + 1) (String.length h - i - 1))) with
              | Some nonce ->
                  send d (reg ~auth:(Auth.response_for ~nonce) ());
                  expect d 200
              | None -> d.failures <- (d.d_name ^ ": unparsable nonce") :: d.failures)
          | None -> d.failures <- (d.d_name ^ ": malformed challenge") :: d.failures)
      | None -> d.failures <- (d.d_name ^ ": 401 without WWW-Authenticate") :: d.failures)
  | s ->
      d.failures <-
        Printf.sprintf "%s: expected 401 challenge, got %s" d.d_name
          (match s with Some s -> string_of_int s | None -> "garbage")
        :: d.failures

let do_options d ~domain ~cseq =
  send d
    (request ~meth:Sip_msg.OPTIONS ~uri:("sip:" ^ domain) ~from:(aor "ping" domain)
       ~to_:(aor "server" domain) ~call_id:(Printf.sprintf "opt-%s-%d" d.d_name cseq) ~cseq ());
  expect d 200

(** One complete call: INVITE (180 + 200), ACK, pause, BYE (200). *)
let do_call d ~caller ~callee ~domain ~call_id ~cseq ?(talk = 10) () =
  let from = aor caller domain and to_ = aor callee domain in
  let uri = to_ in
  send d (request ~meth:Sip_msg.INVITE ~uri ~from ~to_ ~call_id ~cseq ());
  expect d 180;
  expect d 200;
  send d (request ~meth:Sip_msg.ACK ~uri ~from ~to_ ~call_id ~cseq ());
  Api.sleep talk;
  send d (request ~meth:Sip_msg.BYE ~uri ~from ~to_ ~call_id ~cseq:(cseq + 1) ());
  expect d 200

(** INVITE to an unregistered callee: 404 expected. *)
let do_failed_call d ~caller ~callee ~domain ~call_id ~cseq =
  let from = aor caller domain and to_ = aor callee domain in
  send d (request ~meth:Sip_msg.INVITE ~uri:to_ ~from ~to_ ~call_id ~cseq ());
  expect d 404

(** INVITE then CANCEL then BYE (teardown of a cancelled call). *)
let do_cancelled_call d ~caller ~callee ~domain ~call_id ~cseq =
  let from = aor caller domain and to_ = aor callee domain in
  let uri = to_ in
  send d (request ~meth:Sip_msg.INVITE ~uri ~from ~to_ ~call_id ~cseq ());
  expect d 180;
  expect d 200;
  send d (request ~meth:Sip_msg.CANCEL ~uri ~from ~to_ ~call_id ~cseq ());
  expect d 200;
  send d (request ~meth:Sip_msg.BYE ~uri ~from ~to_ ~call_id ~cseq:(cseq + 1) ());
  expect d 200

let do_malformed d ~cseq =
  send d (Printf.sprintf "GARBAGE nonsense/%d\r\n\r\n" cseq);
  expect d 400

(* ------------------------------------------------------------------ *)
(* The eight test cases                                                 *)
(* ------------------------------------------------------------------ *)

type test_case = {
  tc_name : string;
  tc_description : string;
  tc_drivers : (string * (driver -> unit)) list;
}

(** T1: registration burst — twenty users register, a few OPTIONS pings
    in parallel. *)
let t1 =
  {
    tc_name = "T1";
    tc_description = "REGISTER burst (20 users) + OPTIONS pings";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            for i = 0 to 9 do
              ignore (do_register d ~user:(Printf.sprintf "alice%d" i) ~domain:"example.com" ~cseq:(i + 1) ())
            done;
            (* refresh half of them: each refresh deletes the previous binding *)
            for i = 0 to 4 do
              ignore (do_register d ~user:(Printf.sprintf "alice%d" i) ~domain:"example.com" ~cseq:(20 + i) ())
            done );
        ( "uac2",
          fun d ->
            for i = 0 to 9 do
              ignore (do_register d ~user:(Printf.sprintf "bob%d" i) ~domain:"voip.example.net" ~cseq:(i + 1) ())
            done;
            for i = 0 to 4 do
              ignore (do_register d ~user:(Printf.sprintf "bob%d" i) ~domain:"voip.example.net" ~cseq:(20 + i) ())
            done );
        ( "uac3",
          fun d ->
            for i = 0 to 4 do
              do_options d ~domain:"example.com" ~cseq:(i + 1)
            done );
      ];
  }

(** T2: basic calls — register two parties, then ten sequential
    INVITE/ACK/BYE cycles. *)
let t2 =
  {
    tc_name = "T2";
    tc_description = "basic INVITE/ACK/BYE calls";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            ignore (do_register d ~user:"alice" ~domain:"example.com" ~cseq:1 ());
            ignore (do_register d ~user:"bob" ~domain:"example.com" ~cseq:2 ());
            for i = 0 to 9 do
              do_call d ~caller:"alice" ~callee:"bob" ~domain:"example.com"
                ~call_id:(Printf.sprintf "call-t2-%d" i) ~cseq:(10 + (2 * i)) ()
            done );
      ];
  }

(** T3: OPTIONS keep-alives only — the lightest case. *)
let t3 =
  {
    tc_name = "T3";
    tc_description = "OPTIONS keep-alives only";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            for i = 0 to 7 do
              do_options d ~domain:"example.com" ~cseq:(i + 1)
            done );
        ( "uac2",
          fun d ->
            for i = 0 to 6 do
              do_options d ~domain:"pbx.local" ~cseq:(i + 1)
            done );
      ];
  }

(** T4: mixed registrations and calls from three agents. *)
let t4 =
  {
    tc_name = "T4";
    tc_description = "mixed REGISTER + calls, three agents";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            for i = 0 to 5 do
              ignore (do_register d ~user:(Printf.sprintf "user%d" i) ~domain:"example.com" ~cseq:(i + 1) ())
            done );
        ( "uac2",
          fun d ->
            ignore (do_register d ~user:"carol" ~domain:"example.com" ~cseq:1 ());
            for i = 0 to 5 do
              do_call d ~caller:"dave" ~callee:"carol" ~domain:"example.com"
                ~call_id:(Printf.sprintf "call-t4a-%d" i) ~cseq:(10 + (2 * i)) ~talk:6 ()
            done );
        ( "uac3",
          fun d ->
            ignore (do_register d ~user:"erin" ~domain:"voip.example.net" ~cseq:1 ());
            for i = 0 to 4 do
              do_call d ~caller:"frank" ~callee:"erin" ~domain:"voip.example.net"
                ~call_id:(Printf.sprintf "call-t4b-%d" i) ~cseq:(30 + (2 * i)) ~talk:4 ()
            done );
      ];
  }

(** T5: the heaviest case — concurrent calls with re-registrations and
    pings from four agents. *)
let t5 =
  {
    tc_name = "T5";
    tc_description = "concurrent calls + re-registrations, four agents";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            ignore (do_register d ~user:"alice" ~domain:"example.com" ~cseq:1 ());
            for i = 0 to 6 do
              do_call d ~caller:"x" ~callee:"alice" ~domain:"example.com"
                ~call_id:(Printf.sprintf "t5a-%d" i) ~cseq:(10 + (2 * i)) ~talk:8 ()
            done );
        ( "uac2",
          fun d ->
            ignore (do_register d ~user:"bob" ~domain:"example.com" ~cseq:1 ());
            for i = 0 to 6 do
              do_call d ~caller:"y" ~callee:"bob" ~domain:"example.com"
                ~call_id:(Printf.sprintf "t5b-%d" i) ~cseq:(50 + (2 * i)) ~talk:8 ()
            done );
        ( "uac3",
          fun d ->
            (* keep refreshing the same users: refresh = delete old binding *)
            for i = 0 to 9 do
              ignore (do_register d ~user:"alice" ~domain:"example.com" ~cseq:(100 + i) ());
              Api.sleep 5
            done );
        ( "uac4",
          fun d ->
            for i = 0 to 6 do
              do_options d ~domain:"example.com" ~cseq:(i + 1);
              Api.sleep 4
            done );
      ];
  }

(** T6: registrar churn — register/refresh/unregister cycles. *)
let t6 =
  {
    tc_name = "T6";
    tc_description = "registrar churn (register/refresh/unregister)";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            for i = 0 to 7 do
              let user = Printf.sprintf "churn%d" (i mod 4) in
              ignore (do_register d ~user ~domain:"example.com" ~cseq:(10 * (i + 1)) ());
              ignore (do_register d ~user ~domain:"example.com" ~cseq:((10 * (i + 1)) + 1) ());
              do_unregister d ~user ~domain:"example.com" ~cseq:((10 * (i + 1)) + 2)
            done );
        ( "uac2",
          fun d ->
            for i = 0 to 7 do
              let user = Printf.sprintf "churn%d" (4 + (i mod 4)) in
              ignore (do_register d ~user ~domain:"pbx.local" ~cseq:(10 * (i + 1)) ());
              do_unregister d ~user ~domain:"pbx.local" ~cseq:((10 * (i + 1)) + 1)
            done );
        ( "uac3",
          fun d ->
            ignore (do_register d ~user:"stable" ~domain:"example.com" ~cseq:1 ());
            for i = 0 to 4 do
              do_call d ~caller:"z" ~callee:"stable" ~domain:"example.com"
                ~call_id:(Printf.sprintf "t6-%d" i) ~cseq:(200 + (2 * i)) ~talk:5 ()
            done );
      ];
  }

(** T7: error flows — malformed datagrams, calls to unknown users,
    BYEs for unknown dialogs. *)
let t7 =
  {
    tc_name = "T7";
    tc_description = "error flows: malformed, 404s, stray BYEs";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            for i = 0 to 4 do
              do_malformed d ~cseq:i
            done;
            for i = 0 to 4 do
              do_failed_call d ~caller:"ghost" ~callee:(Printf.sprintf "nobody%d" i)
                ~domain:"example.com" ~call_id:(Printf.sprintf "t7-%d" i) ~cseq:(10 + i)
            done );
        ( "uac2",
          fun d ->
            (* BYE for calls that never existed: 481 *)
            for i = 0 to 4 do
              send d
                (request ~meth:Sip_msg.BYE ~uri:(aor "x" "example.com")
                   ~from:(aor "y" "example.com") ~to_:(aor "x" "example.com")
                   ~call_id:(Printf.sprintf "stray-%d" i) ~cseq:(i + 1) ());
              expect d 481
            done;
            ignore (do_register d ~user:"late" ~domain:"example.com" ~cseq:99 ()) );
      ];
  }

(** T8: CANCEL flows. *)
let t8 =
  {
    tc_name = "T8";
    tc_description = "INVITE/CANCEL teardown flows";
    tc_drivers =
      [
        ( "uac1",
          fun d ->
            ignore (do_register d ~user:"victim" ~domain:"example.com" ~cseq:1 ());
            for i = 0 to 5 do
              do_cancelled_call d ~caller:"w" ~callee:"victim" ~domain:"example.com"
                ~call_id:(Printf.sprintf "t8-%d" i) ~cseq:(10 + (2 * i))
            done );
        ( "uac2",
          fun d ->
            for i = 0 to 3 do
              do_options d ~domain:"example.com" ~cseq:(i + 1)
            done );
      ];
  }

let all_test_cases = [ t1; t2; t3; t4; t5; t6; t7; t8 ]

(* ------------------------------------------------------------------ *)
(* Running a test case against a server                                *)
(* ------------------------------------------------------------------ *)

type run_result = {
  r_failures : string list;  (** oracle violations across all drivers *)
  r_responses : int;
  r_requests_handled : int;
}

(** Body to execute as the VM main thread: start the server, run every
    driver of [tc] in its own thread, join them, stop and shut down the
    server.  Returns the oracle result. *)
let run_test_case ~transport ~(server_config : Proxy.config) tc () =
  let server = Proxy.start ~transport server_config in
  let drivers =
    List.map
      (fun (name, script) ->
        let d = make_driver ~transport name in
        let tid =
          Api.spawn ~loc:(lc "main" 300) ~name (fun () ->
              Api.with_frame (lc name 301) (fun () -> script d))
        in
        (d, tid))
      tc.tc_drivers
  in
  List.iter (fun (_, tid) -> Api.join ~loc:(lc "main" 306) tid) drivers;
  Proxy.post_stop server;
  Proxy.shutdown server;
  {
    r_failures = List.concat_map (fun (d, _) -> List.rev d.failures) drivers;
    r_responses = List.fold_left (fun acc (d, _) -> acc + d.responses) 0 drivers;
    r_requests_handled = Proxy.requests_handled server;
  }
