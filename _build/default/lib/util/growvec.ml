(** Growable vector (OCaml 5.1 has no [Dynarray] yet).

    Used pervasively for append-heavy structures: memory pages, thread
    tables, segment graphs, trace buffers. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let length t = t.len

let ensure_capacity t n =
  if n > Array.length t.data then begin
    let cap = max n (2 * Array.length t.data) in
    let data = Array.make cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Growvec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Growvec.set: index out of bounds";
  t.data.(i) <- x

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))

let clear t = t.len <- 0

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0
