(** Shared happens-before clock maintenance.

    Both vector-clock-based detectors ({!Djit}, {!Racetrack}) need the
    same bookkeeping: a clock per thread, advanced and joined along
    create/join edges, lock release→acquire edges, and (configurably)
    condition-variable, semaphore and annotation edges.  This module
    owns that state; detectors keep only their shadow memory. *)

module Vm = Raceguard_vm
module Vc = Vector_clock
open Vm.Event

type config = { sync_on_cond : bool; sync_on_sem : bool; sync_on_annotations : bool }

let default_config = { sync_on_cond = true; sync_on_sem = true; sync_on_annotations = true }

type t = {
  config : config;
  mutable threads : Vc.t option array;
      (** dense by tid — [thread_vc] runs once per memory access in
          every vector-clock detector, so this lookup must be an array
          load, not a hash probe *)
  mutexes : (int, Vc.t) Hashtbl.t;
  rwlocks : (int, Vc.t) Hashtbl.t;
  conds : (int, Vc.t) Hashtbl.t;
  sems : (int, Vc.t) Hashtbl.t;
  annotations : (int, Vc.t) Hashtbl.t;
  exited : (int, Vc.t) Hashtbl.t;
}

let create ?(config = default_config) () =
  {
    config;
    threads = [||];
    mutexes = Hashtbl.create 64;
    rwlocks = Hashtbl.create 16;
    conds = Hashtbl.create 16;
    sems = Hashtbl.create 16;
    annotations = Hashtbl.create 64;
    exited = Hashtbl.create 64;
  }

let vc_of tbl id =
  match Hashtbl.find_opt tbl id with
  | Some vc -> vc
  | None ->
      let vc = Vc.create () in
      Hashtbl.replace tbl id vc;
      vc

let set_thread_vc t tid vc =
  let n = Array.length t.threads in
  if tid >= n then begin
    let a = Array.make (max 64 (max (2 * n) (tid + 1))) None in
    Array.blit t.threads 0 a 0 n;
    t.threads <- a
  end;
  t.threads.(tid) <- Some vc

let thread_vc t tid =
  if tid < Array.length t.threads then
    match Array.unsafe_get t.threads tid with
    | Some vc -> vc
    | None ->
        let vc = Vc.create () in
        Vc.set vc tid 1;
        t.threads.(tid) <- Some vc;
        vc
  else begin
    let vc = Vc.create () in
    Vc.set vc tid 1;
    set_thread_vc t tid vc;
    vc
  end

(** The accessing thread's current clock entry for itself — the stamp
    to record on a shadow cell. *)
let clock_of t tid = Vc.get (thread_vc t tid) tid

(** Is an access stamped (tid, clk) ordered before thread [now]'s
    current state? *)
let ordered_before t ~tid ~clk ~now =
  Vc.ordered_before ~tid ~clk (thread_vc t now)

let release_edge t tid obj_vc =
  let me = thread_vc t tid in
  Vc.join obj_vc me;
  Vc.incr me tid

let acquire_edge t tid obj_vc = Vc.join (thread_vc t tid) obj_vc

(** Absorb one event's effect on the clocks.  Memory events are
    ignored — they are the detectors' business. *)
let on_event t (e : Vm.Event.t) =
  match e with
  | E_thread_start { tid; parent; _ } -> (
      match parent with
      | None -> ignore (thread_vc t tid)
      | Some p ->
          let pvc = thread_vc t p in
          let child = Vc.copy pvc in
          Vc.incr child tid;
          set_thread_vc t tid child;
          Vc.incr pvc p)
  | E_thread_exit { tid } -> Hashtbl.replace t.exited tid (Vc.copy (thread_vc t tid))
  | E_join { joiner; joined; _ } ->
      let last =
        match Hashtbl.find_opt t.exited joined with
        | Some vc -> vc
        | None -> thread_vc t joined
      in
      Vc.join (thread_vc t joiner) last
  | E_acquire { tid; lock; _ } -> (
      match lock with
      | Mutex m -> acquire_edge t tid (vc_of t.mutexes m)
      | Rwlock rw -> acquire_edge t tid (vc_of t.rwlocks rw)
      | Cond _ | Sem _ -> ())
  | E_release { tid; lock; _ } -> (
      match lock with
      | Mutex m -> release_edge t tid (vc_of t.mutexes m)
      | Rwlock rw -> release_edge t tid (vc_of t.rwlocks rw)
      | Cond _ | Sem _ -> ())
  | E_cond_signal { tid; cv; _ } ->
      if t.config.sync_on_cond then release_edge t tid (vc_of t.conds cv)
  | E_cond_wait_post { tid; cv; _ } ->
      if t.config.sync_on_cond then acquire_edge t tid (vc_of t.conds cv)
  | E_sem_post { tid; sem; _ } ->
      if t.config.sync_on_sem then release_edge t tid (vc_of t.sems sem)
  | E_sem_wait_post { tid; sem; _ } ->
      if t.config.sync_on_sem then acquire_edge t tid (vc_of t.sems sem)
  | E_client { tid; req; _ } -> (
      match req with
      | Vm.Eff.Happens_before { tag } ->
          if t.config.sync_on_annotations then release_edge t tid (vc_of t.annotations tag)
      | Vm.Eff.Happens_after { tag } ->
          if t.config.sync_on_annotations then acquire_edge t tid (vc_of t.annotations tag)
      | Vm.Eff.Destruct _ | Vm.Eff.Benign_race _ -> ())
  | E_spawn _ | E_cond_wait_pre _ | E_read _ | E_write _ | E_alloc _ | E_free _
  | E_sync_create _ ->
      ()
