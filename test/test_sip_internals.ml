(* Unit tests for the SIP server's internal components: statistics,
   time formatting, logger, watchdog, routing, request history. *)

module Vm = Raceguard_vm
module Engine = Vm.Engine
module Api = Vm.Api
module Sip = Raceguard_sip
module Det = Raceguard_detector
module Loc = Raceguard_util.Loc

let loc = Loc.v "t.ml" "t" 1

let run ?(seed = 3) f =
  let vm = Engine.create ~config:{ Engine.default_config with seed } () in
  let result = ref None in
  let outcome = Engine.run vm (fun () -> result := Some (f ())) in
  (match outcome.failures with
  | [] -> ()
  | (_, name, e) :: _ -> Alcotest.failf "thread %s raised %s" name (Printexc.to_string e));
  Option.get !result

(* --- stats ----------------------------------------------------------- *)

let test_stats_counters () =
  let total, active =
    run (fun () ->
        let s = Sip.Stats.create () in
        Sip.Stats.incr_total_requests s;
        Sip.Stats.incr_total_requests s;
        Sip.Stats.incr_active_calls s;
        Sip.Stats.incr_active_calls s;
        Sip.Stats.decr_active_calls s;
        ( Sip.Stats.get s Sip.Stats.total_requests ~loc,
          Sip.Stats.get s Sip.Stats.active_calls ~loc ))
  in
  Alcotest.(check int) "racy counter counts (single thread)" 2 total;
  Alcotest.(check int) "locked counter balances" 1 active

let test_stats_method_counters_bounds () =
  (* out-of-range method codes must be ignored, not crash *)
  let () =
    run (fun () ->
        let s = Sip.Stats.create () in
        Sip.Stats.incr_method s ~meth_code:0;
        Sip.Stats.incr_method s ~meth_code:7;
        Sip.Stats.incr_method s ~meth_code:3)
  in
  ()

(* --- timeutil ---------------------------------------------------------- *)

let test_timeutil_formats () =
  let s1, s2 =
    run (fun () ->
        let t = Sip.Timeutil.create () in
        let a = Sip.Timeutil.ctime t in
        let s1 = Sip.Timeutil.read_formatted t a in
        Api.sleep 50;
        let b = Sip.Timeutil.ctime t in
        let s2 = Sip.Timeutil.read_formatted t b in
        (s1, s2))
  in
  Alcotest.(check int) "fixed width" 8 (String.length s1);
  Alcotest.(check bool) "time advances" true (s1 <> s2)

(* --- logger ------------------------------------------------------------ *)

let test_logger_lines () =
  let lines =
    run (fun () ->
        let stats = Sip.Stats.create () in
        let time = Sip.Timeutil.create () in
        let logger = Sip.Logger.create ~stats ~time ~annotate:true in
        Sip.Logger.start logger;
        Sip.Logger.log logger ~loc ~level:1 "first";
        Sip.Logger.log logger ~loc ~level:2 "second";
        Api.sleep 50;
        Sip.Logger.stop logger;
        Sip.Logger.join logger;
        Sip.Logger.lines logger)
  in
  Alcotest.(check int) "two lines" 2 (List.length lines);
  Alcotest.(check bool) "order preserved" true
    (match lines with
    | [ a; b ] ->
        String.length a > 0
        && String.length b > 0
        && String.sub a (String.length a - 5) 5 = "first"
        && String.sub b (String.length b - 6) 6 = "second"
    | _ -> false)

(* --- watchdog ----------------------------------------------------------- *)

let test_watchdog_alarm () =
  let alarms =
    run (fun () ->
        let w = Sip.Watchdog.create ~timeout:10 in
        Sip.Watchdog.start w;
        (* simulate a worker stuck waiting for a long time *)
        let stuck =
          Api.spawn ~loc ~name:"stuck" (fun () ->
              Sip.Watchdog.before_lock w;
              Api.sleep 100;
              Sip.Watchdog.after_lock w)
        in
        Api.sleep 120;
        Sip.Watchdog.stop w;
        Sip.Watchdog.join w;
        Api.join ~loc stuck;
        Sip.Watchdog.alarms w)
  in
  Alcotest.(check bool) "stuck thread flagged" true (List.length alarms > 0)

(* --- routing -------------------------------------------------------------- *)

let test_routing_lookup_and_refresh () =
  let hit, miss, refreshes =
    run (fun () ->
        let r = Sip.Routing.create ~domains:[ "a.com"; "b.net" ] in
        let hit = Sip.Routing.next_hop r ~domain:"a.com" in
        let miss = Sip.Routing.next_hop r ~domain:"zzz.org" in
        Sip.Routing.refresh r;
        Sip.Routing.refresh r;
        (hit, miss, Sip.Routing.refreshes r))
  in
  (match hit with
  | Some (hop, cost, gw) ->
      Alcotest.(check bool) "hop id assigned" true (hop >= 100);
      Alcotest.(check bool) "cost positive" true (cost > 0);
      Alcotest.(check string) "gateway banner" "gw1.core.example.net" gw
  | None -> Alcotest.fail "known domain not routed");
  Alcotest.(check bool) "unknown domain unrouted" true (miss = None);
  Alcotest.(check int) "refreshes counted" 2 refreshes

(* --- history ---------------------------------------------------------------- *)

let test_history_eviction () =
  (* count Digest deletions through the event stream *)
  let frees = ref 0 in
  let vm = Engine.create ~config:{ Engine.default_config with seed = 3 } () in
  Engine.add_tool vm
    (Vm.Tool.of_fn "frees" (fun e ->
         match e with Vm.Event.E_client { req = Vm.Eff.Destruct _; _ } -> incr frees | _ -> ()));
  let outcome =
    Engine.run vm (fun () ->
        let h = Sip.History.create ~annotate:true ~capacity:3 in
        for i = 1 to 8 do
          Sip.History.record h ~src_id:i ~meth:1 ~uri:(Printf.sprintf "sip:u%d@x" i) ~outcome:200
        done;
        Sip.History.clear h)
  in
  assert (outcome.failures = []);
  (* 8 inserts into a 3-slot ring: 5 evictions + 3 cleared at the end *)
  Alcotest.(check int) "every digest destroyed exactly once" 8 !frees

(* --- message objects ---------------------------------------------------------- *)

let test_request_object_roundtrip () =
  let cseq, meth, expires =
    run (fun () ->
        let w =
          {
            Sip.Sip_msg.w_meth = Sip.Sip_msg.REGISTER;
            w_uri = "sip:example.com";
            w_from = "sip:a@example.com";
            w_to = "sip:a@example.com";
            w_call_id = "c1";
            w_cseq = 9;
            w_contact = "sip:a@1.2.3.4";
            w_expires = 600;
            w_auth = 0;
          }
        in
        let obj = Sip.Sip_msg.build_request_object ~loc w in
        let cls = Sip.Sip_msg.sip_request in
        let module O = Raceguard_cxxsim.Object_model in
        let r = (O.get ~loc cls obj "cseq", O.get ~loc cls obj "method", O.get ~loc cls obj "expires") in
        O.delete_ ~loc ~annotate:true cls obj;
        r)
  in
  Alcotest.(check int) "cseq" 9 cseq;
  Alcotest.(check int) "method code" (Sip.Sip_msg.meth_code Sip.Sip_msg.REGISTER) meth;
  Alcotest.(check int) "expires" 600 expires

let test_response_serialization () =
  let wire =
    run (fun () ->
        let w =
          {
            Sip.Sip_msg.w_meth = Sip.Sip_msg.INVITE;
            w_uri = "sip:b@x.com";
            w_from = "sip:a@x.com";
            w_to = "sip:b@x.com";
            w_call_id = "call-7";
            w_cseq = 3;
            w_contact = "";
            w_expires = -1;
            w_auth = 0;
          }
        in
        let req = Sip.Sip_msg.build_request_object ~loc w in
        let reason = Raceguard_cxxsim.Refstring.create ~loc "Ringing" in
        let resp = Sip.Sip_msg.build_response_object ~loc ~status:180 ~reason_rs:reason req in
        let wire = Sip.Sip_msg.serialize_response ~loc resp in
        let module O = Raceguard_cxxsim.Object_model in
        O.delete_ ~loc ~annotate:true Sip.Sip_msg.sip_response resp;
        O.delete_ ~loc ~annotate:true Sip.Sip_msg.sip_request req;
        Raceguard_cxxsim.Refstring.release reason;
        wire)
  in
  Alcotest.(check (option int)) "status on the wire" (Some 180) (Sip.Sip_msg.wire_status wire);
  Alcotest.(check (option string)) "call id propagated" (Some "call-7")
    (Sip.Sip_msg.wire_header wire "Call-ID")

let test_domain_helpers () =
  Alcotest.(check string) "domain of sip uri" "example.com"
    (Sip.Proxy.extract_domain "sip:alice@example.com");
  Alcotest.(check string) "user of sip uri" "alice" (Sip.Proxy.extract_user "sip:alice@example.com");
  Alcotest.(check string) "domain of bare uri" "example.com"
    (Sip.Proxy.extract_domain "sip:example.com");
  Alcotest.(check string) "user without scheme" "bob" (Sip.Proxy.extract_user "bob@x")

(* --- domain data (B2/B4 machinery) ------------------------------------------- *)

let test_domain_data_lookups () =
  let unsafe, safe, missing =
    run (fun () ->
        let alloc = Raceguard_cxxsim.Allocator.create Raceguard_cxxsim.Allocator.Direct in
        let dd =
          Sip.Domain_data.create ~alloc ~annotate:true ~init_racy:false
            ~domains:[ "x.com"; "y.org" ] ()
        in
        let unsafe = Sip.Domain_data.unsafe_lookup dd ~domain:"x.com" in
        let safe = Sip.Domain_data.safe_lookup dd ~domain:"y.org" in
        let missing = Sip.Domain_data.safe_lookup dd ~domain:"nope" in
        Sip.Domain_data.stop dd;
        Sip.Domain_data.join dd;
        (unsafe, safe, missing))
  in
  Alcotest.(check bool) "unsafe finds known domain" true (unsafe <> None);
  Alcotest.(check bool) "safe finds known domain" true (safe <> None);
  Alcotest.(check bool) "unknown domain absent" true (missing = None)

let suite =
  ( "sip-internals",
    [
      Alcotest.test_case "stats counters" `Quick test_stats_counters;
      Alcotest.test_case "stats method bounds" `Quick test_stats_method_counters_bounds;
      Alcotest.test_case "timeutil" `Quick test_timeutil_formats;
      Alcotest.test_case "logger lines" `Quick test_logger_lines;
      Alcotest.test_case "watchdog alarm" `Quick test_watchdog_alarm;
      Alcotest.test_case "routing" `Quick test_routing_lookup_and_refresh;
      Alcotest.test_case "history eviction" `Quick test_history_eviction;
      Alcotest.test_case "request object" `Quick test_request_object_roundtrip;
      Alcotest.test_case "response serialization" `Quick test_response_serialization;
      Alcotest.test_case "uri helpers" `Quick test_domain_helpers;
      Alcotest.test_case "domain data lookups" `Quick test_domain_data_lookups;
    ] )
