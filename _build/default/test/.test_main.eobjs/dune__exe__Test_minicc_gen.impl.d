test/test_minicc_gen.ml: List Printf QCheck2 QCheck_alcotest Raceguard_minicc Raceguard_vm
